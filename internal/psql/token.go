// Package psql implements Preference SQL (§6.1): SQL extended by a
// PREFERRING clause for soft constraints under BMO semantics, CASCADE
// chains, GROUPING BY, quality supervision via BUT ONLY with LEVEL and
// DISTANCE, the SKYLINE OF clause of [BKS01], and TOP-k for the ranked
// query model. Queries are parsed into an AST, planned, and executed
// against in-memory relations (internal/relation) using the evaluation
// engines of internal/engine.
package psql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp     // = <> != < <= > >= + - * /
	TokLParen // (
	TokRParen // )
	TokComma
	TokSemi
	TokStar
)

// Token is one lexical token with its source position (1-based offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep their case
	Pos  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of query"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	}
	return t.Text
}

// keywords of Preference SQL. Multi-word constructs (PRIOR TO, BUT ONLY,
// GROUPING BY, SKYLINE OF, NOT IN, ORDER BY, IS NULL) are assembled in the
// parser from consecutive keyword tokens.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "PREFERRING": true,
	"CASCADE": true, "BUT": true, "ONLY": true, "GROUPING": true,
	"BY": true, "ORDER": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "LIKE": true, "IS": true, "NULL": true, "ELSE": true,
	"AROUND": true, "BETWEEN": true, "LOWEST": true, "HIGHEST": true,
	"SCORE": true, "EXPLICIT": true, "PRIOR": true, "TO": true,
	"SKYLINE": true, "OF": true, "MIN": true, "MAX": true, "TOP": true,
	"LIMIT": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"LEVEL": true, "DISTANCE": true, "AS": true, "TRUE": true, "FALSE": true,
	"EXPLAIN": true,
	"RANK":    true,
}

// Lex tokenizes a Preference SQL query.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i + 1})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i + 1})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i + 1})
			i++
		case c == ';':
			toks = append(toks, Token{TokSemi, ";", i + 1})
			i++
		case c == '*':
			toks = append(toks, Token{TokStar, "*", i + 1})
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("psql: unterminated string literal at offset %d", i+1)
			}
			toks = append(toks, Token{TokString, sb.String(), i + 1})
			i = j + 1
		case c == '=':
			toks = append(toks, Token{TokOp, "=", i + 1})
			i++
		case c == '<':
			switch {
			case i+1 < n && input[i+1] == '>':
				toks = append(toks, Token{TokOp, "<>", i + 1})
				i += 2
			case i+1 < n && input[i+1] == '=':
				toks = append(toks, Token{TokOp, "<=", i + 1})
				i += 2
			default:
				toks = append(toks, Token{TokOp, "<", i + 1})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokOp, ">=", i + 1})
				i += 2
			} else {
				toks = append(toks, Token{TokOp, ">", i + 1})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokOp, "<>", i + 1})
				i += 2
			} else {
				return nil, fmt.Errorf("psql: unexpected '!' at offset %d", i+1)
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' && !seenDot) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, Token{TokNumber, input[i:j], i + 1})
			i = j
		case c == '-' && len(toks) > 0 && (toks[len(toks)-1].Kind == TokOp || toks[len(toks)-1].Kind == TokLParen || toks[len(toks)-1].Kind == TokComma || toks[len(toks)-1].Kind == TokKeyword):
			// Unary minus on a numeric literal.
			j := i + 1
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' && !seenDot) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("psql: stray '-' at offset %d", i+1)
			}
			toks = append(toks, Token{TokNumber, input[i:j], i + 1})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{TokKeyword, upper, i + 1})
			} else {
				toks = append(toks, Token{TokIdent, word, i + 1})
			}
			i = j
		default:
			return nil, fmt.Errorf("psql: unexpected character %q at offset %d", c, i+1)
		}
	}
	toks = append(toks, Token{TokEOF, "", n + 1})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
