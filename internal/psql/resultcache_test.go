package psql

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/resultcache"
	"repro/internal/relation"
)

// churnRow builds one random car row with the given oid.
func churnRow(rng *rand.Rand, oid int) relation.Row {
	colors := []string{"red", "blue", "gray"}
	return relation.Row{
		int64(oid),
		int64(20000 + rng.Intn(40)*1000),
		int64(70 + rng.Intn(40)*5),
		colors[rng.Intn(len(colors))],
	}
}

// churnCar builds a randomized car relation for the churn battery.
func churnCar(rng *rand.Rand, n int) *relation.Relation {
	car := relation.New("car", relation.MustSchema(
		relation.Column{Name: "oid", Type: relation.Int},
		relation.Column{Name: "price", Type: relation.Int},
		relation.Column{Name: "power", Type: relation.Int},
		relation.Column{Name: "color", Type: relation.String},
	))
	for i := 0; i < n; i++ {
		car.MustInsert(churnRow(rng, i))
	}
	return car
}

// churnQueries covers the pipeline shapes: the keyed first soft step
// (with and without WHERE), plus the always-evaluating tails (grouped,
// cascade, BUT ONLY, skyline, TOP) that consume its output.
var churnQueries = []string{
	"SELECT oid FROM car PREFERRING LOWEST(price) AND HIGHEST(power)",
	"SELECT oid FROM car WHERE price <= 45000 PREFERRING HIGHEST(power)",
	"SELECT oid FROM car PREFERRING price AROUND 30000",
	"SELECT oid FROM car PREFERRING LOWEST(price) GROUPING BY color",
	"SELECT oid FROM car PREFERRING color IN ('red') CASCADE HIGHEST(power)",
	"SELECT oid FROM car PREFERRING price AROUND 30000 BUT ONLY level(price) <= 2",
	"SELECT oid FROM car SKYLINE OF price MIN, power MAX",
	"SELECT oid FROM car PREFERRING LOWEST(price) AND HIGHEST(power) TOP 3",
}

// renderRel renders a result's rows for comparison.
func renderRel(r *relation.Relation) string {
	var b strings.Builder
	for i := 0; i < r.Len(); i++ {
		fmt.Fprintf(&b, "%v\n", r.Row(i))
	}
	return b.String()
}

// TestResultCacheChurnAgreement is the randomized end-to-end soundness
// battery: across flat and sharded (1..8) layouts, every algorithm, and
// a churn of inserts, catalog Replace and Drop/re-register, each query
// executes twice through the cache (cold store, then hit) and both
// results must equal an execution with the cache disabled. The per-run
// hit assertion keeps the agreement non-vacuous.
func TestResultCacheChurnAgreement(t *testing.T) {
	algs := []engine.Algorithm{
		engine.Naive, engine.BNL, engine.SFS, engine.DNC, engine.Decomposition, engine.Auto,
	}
	for _, shards := range []int{0, 1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			resultcache.Reset()
			defer resultcache.Reset()
			rng := rand.New(rand.NewSource(int64(31 + shards)))
			car := churnCar(rng, 40+rng.Intn(40))
			cat := Catalog{}
			install := func(r *relation.Relation) {
				if shards == 0 {
					cat.Replace("car", r)
					return
				}
				sh, err := relation.ShardRelation(r, shards, relation.ByHash("oid"))
				if err != nil {
					t.Fatal(err)
				}
				cat.Replace("car", sh)
			}
			install(car)
			// A cancellable context keeps the sharded pipeline on the
			// hardened (ctx-aware, cache-served) entry points.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for step := 0; step < 10; step++ {
				query := churnQueries[rng.Intn(len(churnQueries))]
				opts := Options{Algorithm: algs[rng.Intn(len(algs))]}
				parsed, err := Parse(query)
				if err != nil {
					t.Fatal(err)
				}
				var through [2]string
				for i := range through {
					res, err := ExecCtx(ctx, parsed, cat, opts)
					if err != nil {
						t.Fatalf("step %d %q: %v", step, query, err)
					}
					through[i] = renderRel(res.Rel)
				}
				resultcache.SetEnabled(false)
				res, err := ExecCtx(ctx, parsed, cat, opts)
				resultcache.SetEnabled(true)
				if err != nil {
					t.Fatalf("step %d %q (cache off): %v", step, query, err)
				}
				want := renderRel(res.Rel)
				if through[0] != want || through[1] != want {
					t.Fatalf("step %d %q (alg %v): cold/hit/uncached disagree:\ncold: %shit:  %swant: %s",
						step, query, opts.Algorithm, through[0], through[1], want)
				}
				switch rng.Intn(4) {
				case 0, 1: // append into the live table (maintenance carry)
					row := churnRow(rng, 1000+step)
					switch tbl := cat["car"].(type) {
					case *relation.Relation:
						tbl.MustInsert(row)
					case *relation.Sharded:
						if err := tbl.Insert(row); err != nil {
							t.Fatal(err)
						}
					}
				case 2: // replace with a fresh relation (evicts the old one)
					car = churnCar(rng, 30+rng.Intn(40))
					install(car)
				case 3: // drop and re-register (evicts, then cold restart)
					cat.Drop("car")
					install(car)
				}
			}
			if h, _, _ := resultcache.Stats(); h == 0 {
				t.Fatal("churn battery must exercise cache hits")
			}
		})
	}
}

// TestExplainReportsResultCache pins the EXPLAIN annotations: cold
// before the first execution, hit after (including after a write, since
// maintenance carries the entry forward), bypass when the cache is off,
// and the per-shard rollup on sharded layouts.
func TestExplainReportsResultCache(t *testing.T) {
	resultcache.Reset()
	defer resultcache.Reset()
	cat := testCatalog()
	query := "SELECT oid FROM car PREFERRING LOWEST(price) AND HIGHEST(power)"

	plan, err := ExplainQuery(query, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "result cache: cold") {
		t.Fatalf("pre-execution plan must report cold:\n%s", plan)
	}
	if _, err := Run(query, cat, Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err = ExplainQuery(query, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "result cache: hit") {
		t.Fatalf("post-execution plan must report hit:\n%s", plan)
	}
	// A write does not invalidate: maintenance carries the entry to the
	// new generation, so the repeat statement still serves.
	cat["car"].(*relation.Relation).MustInsert(
		relation.Row{int64(9), "VW", "red", int64(70000), int64(60), int64(90000)})
	plan, err = ExplainQuery(query, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "result cache: hit") {
		t.Fatalf("post-insert plan must still report hit (incremental maintenance):\n%s", plan)
	}
	resultcache.SetEnabled(false)
	plan, err = ExplainQuery(query, cat, Options{})
	resultcache.SetEnabled(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "result cache: bypass") {
		t.Fatalf("disabled-cache plan must report bypass:\n%s", plan)
	}

	// Sharded: the rollup counts cached shards.
	resultcache.Reset()
	flat := cat["car"].(*relation.Relation)
	sh, err := relation.ShardRelation(flat, 3, relation.ByHash("oid"))
	if err != nil {
		t.Fatal(err)
	}
	shCat := Catalog{"car": sh}
	plan, err = ExplainQuery(query, shCat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "result cache: cold on 3/3 shards") {
		t.Fatalf("pre-execution sharded plan must report cold on all shards:\n%s", plan)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parsed, err := Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecCtx(ctx, parsed, shCat, Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err = ExplainQuery(query, shCat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "result cache: hit on all shards") {
		t.Fatalf("post-execution sharded plan must report hit on all shards:\n%s", plan)
	}
}
