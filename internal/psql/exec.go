package psql

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/filter"
	"repro/internal/pref"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/relation"
)

// Catalog resolves table names for query execution. A table is either a
// flat *relation.Relation or a *relation.Sharded — execution dispatches
// on the concrete storage layout, so registering a sharded table routes
// every query through the shard-aware entry points.
type Catalog map[string]relation.Table

// Drop removes a table from the catalog and evicts every bound form
// cached against it — compile cache, selection bitmaps, quality and rank
// vectors; for a sharded table the sweep covers every shard — so the
// dropped rows stop being pinned until ordinary capacity eviction. It
// reports whether the table existed.
func (c Catalog) Drop(name string) bool {
	tbl, ok := c[name]
	if !ok {
		return false
	}
	evictTable(tbl)
	delete(c, name)
	return true
}

// Replace installs a table under the name, evicting the cached bound
// forms of any table it displaces (see Drop).
func (c Catalog) Replace(name string, tbl relation.Table) {
	if old, ok := c[name]; ok && old != tbl {
		evictTable(old)
	}
	c[name] = tbl
}

// evictTable sweeps a table's cached bound forms, whatever its layout.
func evictTable(tbl relation.Table) {
	switch t := tbl.(type) {
	case *relation.Relation:
		engine.EvictRelation(t)
	case *relation.Sharded:
		engine.EvictSharded(t)
	}
}

// Options configure execution.
type Options struct {
	// Algorithm selects the BMO evaluation strategy (engine.Auto default).
	Algorithm engine.Algorithm
	// Timeout, when positive, bounds the whole execution with a deadline
	// derived from the caller's context (ExecCtx/RunCtx; the legacy
	// entry points imply context.Background()).
	Timeout time.Duration
	// Robust configures the fault tolerance of sharded evaluation: the
	// partial-result policy plus an optional per-shard deadline. The
	// zero value is strict and deadline-free. Fault isolation exists
	// along shard boundaries, so Robust has no effect on flat tables.
	Robust engine.Robust
	// Admission, when non-nil, gates execution behind a bounded
	// in-flight semaphore: the query acquires a slot before evaluating
	// (queueing up to the limiter's timeout) and overload sheds with a
	// typed *engine.OverloadError instead of piling up work.
	Admission *engine.Admission
}

// Run parses and executes a Preference SQL statement against the catalog.
func Run(query string, cat Catalog, opts Options) (*relation.Relation, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Exec(q, cat, opts)
}

// Exec executes a parsed query. The evaluation pipeline follows §5 and
// §6.1: hard WHERE selection first, then the PREFERRING soft constraint
// under BMO semantics (grouped per GROUPING BY), then CASCADE preference
// queries, the BUT ONLY quality filter, SKYLINE OF, ORDER BY, TOP-k and
// finally projection. A TOP-k with a RANK preference switches to the
// ranked (k-best) query model of §6.2 instead of BMO.
//
// The pipeline is index-chained over the base relation: the WHERE clause
// compiles to a cached selection bitmap (filter.CompileCached), each soft
// step evaluates via engine.BMOIndicesOn over the surviving row positions,
// and rows materialize only at ORDER BY / projection time. Every compiled
// form therefore binds to the base relation's column arrays and is reused
// across repeated executions of the same query (or any query sharing a
// clause) while the relation is unchanged; preference terms run through
// algebra.Simplify first, so the evaluated term matches the one EXPLAIN
// reports.
func Exec(q *Query, cat Catalog, opts Options) (*relation.Relation, error) {
	res, err := ExecCtx(context.Background(), q, cat, opts)
	if err != nil {
		return nil, err
	}
	return res.Rel, nil
}

// execPipeline dispatches a parsed query to the flat or sharded pipeline.
// The context is live here: admission and the Options.Timeout deadline
// were applied by ExecCtx before dispatch.
func execPipeline(ctx context.Context, q *Query, cat Catalog, opts Options) (*Result, error) {
	if q.ExplainPlan {
		text, err := Explain(q, cat, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Rel: explainRelation(text)}, nil
	}
	tbl, ok := cat[q.From]
	if !ok {
		return nil, fmt.Errorf("psql: unknown relation %q", q.From)
	}
	if err := checkAttrs(q, tbl); err != nil {
		return nil, err
	}
	if sh, sharded := tbl.(*relation.Sharded); sharded {
		return execSharded(ctx, q, sh, opts)
	}
	base, ok := tbl.(*relation.Relation)
	if !ok {
		return nil, fmt.Errorf("psql: relation %q has unsupported storage %T", q.From, tbl)
	}
	return execFlat(ctx, q, base, opts)
}

// execFlat runs the §5/§6.1 pipeline over a flat relation. Soft steps
// evaluate through the ctx-aware engine twins (cooperative cancellation
// at the engine's stride; with an uncancellable context they reduce to
// the legacy evaluators); the grouped step and the BUT ONLY scan are
// stage-level cancellable — the context is checked at their boundaries.
func execFlat(ctx context.Context, q *Query, base *relation.Relation, opts Options) (*Result, error) {
	// idx == nil means "every row" throughout the soft-step chain (the
	// engine and rank entry points all take it that way): deferring the
	// materialization keeps a no-WHERE repeat statement free of any O(n)
	// work when the result cache serves its maxima.
	var idx []int
	if q.Where != nil {
		idx = filter.CompileCached(q.Where, base).Indices()
	}
	var builtPref pref.Preference
	if q.Preferring != nil {
		built, err := q.Preferring.Build()
		if err != nil {
			return nil, err
		}
		builtPref = built
		p := algebra.Simplify(built)
		if s, ok := built.(pref.Scorer); ok && q.Top > 0 {
			// Ranked query model: k best by combined score, bypassing BMO.
			// Dispatch on the term as written (like Explain): simplification
			// can collapse a non-Scorer accumulation to a Scorer leaf, which
			// must stay a BMO query with TOP-k truncation. Scoring runs over
			// the base relation's candidate positions (compiled vector when
			// the term compiles) — nothing materializes before the k best
			// rows are known.
			results, err := rank.TopKOnCtx(ctx, s, base, q.Top, idx)
			if err != nil {
				return nil, err
			}
			ridx := make([]int, len(results))
			for i, r := range results {
				ridx[i] = r.Row
			}
			return wrapResult(project(q, base.Pick(ridx)))
		}
		if len(q.GroupingBy) > 0 {
			// Grouped evaluation over the candidate index set: groups
			// partition by the base relation's cached equality codes and
			// each group evaluates as an index slice (GroupByIndicesOn), so
			// even a WHERE-filtered grouped query stays on the catalog
			// relation's cache-served bound form.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			idx = engine.GroupByIndicesOn(p, q.GroupingBy, base, opts.Algorithm, idx)
		} else {
			// First soft step over the WHERE-selected candidates: the one
			// shape the result cache keys exactly — (relation generation,
			// simplified term, WHERE tree) — so repeat statements serve the
			// memoized maxima without evaluating.
			var err error
			if idx, err = engine.EvalIndicesCtxKeyed(ctx, p, base, opts.Algorithm, idx, q.Where); err != nil {
				return nil, err
			}
		}
	}
	for _, c := range q.Cascades {
		built, err := c.Build()
		if err != nil {
			return nil, err
		}
		if builtPref == nil {
			builtPref = built
		}
		if idx, err = engine.EvalIndicesCtx(ctx, algebra.Simplify(built), base, opts.Algorithm, idx); err != nil {
			return nil, err
		}
	}
	if q.ButOnly != nil {
		if builtPref == nil {
			return nil, fmt.Errorf("psql: BUT ONLY requires a PREFERRING clause")
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		byAttr := collectBasePrefs(q)
		kept := idx[:0]
		compiled := false
		if butVectorWorthwhile(len(idx), base.Len()) || butBound(q.ButOnly, byAttr, base) {
			if keep, ok := compileBut(q.ButOnly, byAttr, base); ok {
				// Compiled quality cascade: every LEVEL/DISTANCE measure is
				// a cached vector over the base relation and the filter is a
				// threshold scan over the surviving positions.
				compiled = true
				for _, i := range idx {
					if keep(i) {
						kept = append(kept, i)
					}
				}
			}
		}
		if !compiled {
			for _, i := range idx {
				if q.ButOnly.Eval(byAttr, base.Tuple(i)) {
					kept = append(kept, i)
				}
			}
		}
		idx = kept
	}
	if q.Skyline != nil {
		p, err := q.Skyline.Preference()
		if err != nil {
			return nil, err
		}
		if idx, err = engine.EvalIndicesCtx(ctx, p, base, opts.Algorithm, idx); err != nil {
			return nil, err
		}
	}
	if idx == nil && q.Where == nil && q.Preferring == nil && len(q.Cascades) == 0 && q.Skyline == nil {
		// No step narrowed the candidate set: the deferred "every row"
		// materializes only here, for the plain-selection shape.
		idx = allIndices(base.Len())
	}
	return wrapResult(finishRows(q, base.Pick(idx)))
}

// wrapResult lifts a legacy (relation, error) pair into a Result.
func wrapResult(rel *relation.Relation, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return &Result{Rel: rel}, nil
}

// finishRows applies the materialized pipeline tail shared by the flat
// and sharded paths: ORDER BY, TOP-k truncation and projection.
func finishRows(q *Query, out *relation.Relation) (*relation.Relation, error) {
	if len(q.OrderBy) > 0 {
		// Pick built a fresh row slice, so the in-place sort cannot disturb
		// the catalog relation.
		out.SortBy(func(a, b pref.Tuple) bool { return orderLess(q.OrderBy, a, b) })
	}
	if q.Top > 0 && out.Len() > q.Top {
		top := make([]int, q.Top)
		for i := range top {
			top[i] = i
		}
		out = out.Pick(top)
	}
	return project(q, out)
}

// execSharded is the shard-aware twin of execFlat: the same §5/§6.1
// pipeline index-chained per shard. The WHERE clause binds per shard
// through the selection cache (each shard keeps its own bitmap), every
// soft step evaluates shard-local through the shards' cached bound forms
// and merges cross-shard (engine.BMOShardedOn / GroupByShardedOn,
// rank.TopKShardedOn for the ranked model), the BUT ONLY quality filter
// threshold-scans each shard's cached measure vectors, and rows
// materialize only at the tail — in shard-major global id order, the
// sharded image of base relation order.
//
// With a cancellable context, a timeout, or a non-default Robust, the
// soft steps run on the hardened ctx twins (engine.BMOShardedOnCtx &co):
// per-shard panic containment and deadlines, cooperative cancellation,
// and PolicyPartial degradation — each stage's missing shards accumulate
// into Result.Partial. Otherwise the legacy evaluators run, keeping the
// uninstrumented path (including the planner's flattened-merge choice)
// byte-identical. The grouped step is stage-level cancellable: groups
// span shards through the merge dictionary, so there is no per-shard
// boundary to degrade along — the context is checked at its edges.
func execSharded(ctx context.Context, q *Query, s *relation.Sharded, opts Options) (*Result, error) {
	hardened := ctx.Done() != nil || opts.Robust != (engine.Robust{})
	var part *engine.Partial
	// keyed marks the first soft step, whose per-shard candidate sets are
	// exactly the WHERE-selected positions — the shape the result cache
	// keys; later steps run over reduced sets and always evaluate.
	bmo := func(p pref.Preference, sets engine.ShardSets, keyed bool) (engine.ShardSets, error) {
		if !hardened {
			return engine.BMOShardedOn(p, s, opts.Algorithm, sets), nil
		}
		var (
			out engine.ShardSets
			pt  *engine.Partial
			err error
		)
		if keyed {
			out, pt, err = engine.BMOShardedOnCtxKeyed(ctx, p, s, opts.Algorithm, sets, q.Where, opts.Robust)
		} else {
			out, pt, err = engine.BMOShardedOnCtx(ctx, p, s, opts.Algorithm, sets, opts.Robust)
		}
		if err != nil {
			return nil, err
		}
		part = mergePartials(part, pt)
		return out, nil
	}
	bmoFiltered := func(p pref.Preference, sets engine.ShardSets, keep engine.ShardFilter, keyed bool) (engine.ShardSets, error) {
		if !hardened {
			return engine.BMOShardedOnFiltered(p, s, opts.Algorithm, sets, keep), nil
		}
		var (
			out engine.ShardSets
			pt  *engine.Partial
			err error
		)
		if keyed {
			out, pt, err = engine.BMOShardedOnFilteredCtxKeyed(ctx, p, s, opts.Algorithm, sets, q.Where, keep, opts.Robust)
		} else {
			out, pt, err = engine.BMOShardedOnFilteredCtx(ctx, p, s, opts.Algorithm, sets, keep, opts.Robust)
		}
		if err != nil {
			return nil, err
		}
		part = mergePartials(part, pt)
		return out, nil
	}
	sets := make(engine.ShardSets, s.NumShards())
	if q.Where != nil {
		for i := 0; i < s.NumShards(); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sets[i] = filter.CompileCached(q.Where, s.Shard(i)).Indices()
		}
	}
	// The BUT ONLY threshold fuses into the last soft pass before it —
	// the final CASCADE, else a non-grouped PREFERRING — so its scan runs
	// inside the per-shard fan-out on hot columns instead of as a
	// separate serial step (engine.BMOShardedOnFiltered keeps the
	// filter-after-merge semantics). Grouped PREFERRING without cascades,
	// and the error cases, keep the separate step below.
	fuseButCascade := q.ButOnly != nil && len(q.Cascades) > 0
	fuseButPreferring := q.ButOnly != nil && len(q.Cascades) == 0 &&
		q.Preferring != nil && len(q.GroupingBy) == 0
	butFused := false
	var builtPref pref.Preference
	if q.Preferring != nil {
		built, err := q.Preferring.Build()
		if err != nil {
			return nil, err
		}
		builtPref = built
		p := algebra.Simplify(built)
		if sc, ok := built.(pref.Scorer); ok && q.Top > 0 {
			// Ranked query model: per-shard k-best off the cached score
			// vectors, heap-merged to the global k.
			var results []rank.Result
			if hardened {
				var pt *engine.Partial
				if results, pt, err = rank.TopKShardedCtx(ctx, sc, s, q.Top, sets, opts.Robust); err != nil {
					return nil, err
				}
				part = mergePartials(part, pt)
			} else {
				results = rank.TopKShardedOn(sc, s, q.Top, sets)
			}
			gids := make([]int, len(results))
			for i, r := range results {
				gids[i] = r.Row
			}
			res, err := wrapResult(project(q, s.Pick(gids)))
			if err != nil {
				return nil, err
			}
			res.Partial = part
			return res, nil
		}
		if len(q.GroupingBy) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sets = engine.GroupByShardedOn(p, q.GroupingBy, s, opts.Algorithm, sets)
		} else if fuseButPreferring {
			if sets, err = bmoFiltered(p, sets, butShardFilter(q, s), true); err != nil {
				return nil, err
			}
			butFused = true
		} else {
			if sets, err = bmo(p, sets, true); err != nil {
				return nil, err
			}
		}
	}
	for ci, c := range q.Cascades {
		built, err := c.Build()
		if err != nil {
			return nil, err
		}
		if builtPref == nil {
			builtPref = built
		}
		p := algebra.Simplify(built)
		if fuseButCascade && ci == len(q.Cascades)-1 {
			if sets, err = bmoFiltered(p, sets, butShardFilter(q, s), false); err != nil {
				return nil, err
			}
			butFused = true
		} else {
			if sets, err = bmo(p, sets, false); err != nil {
				return nil, err
			}
		}
	}
	if q.ButOnly != nil && !butFused {
		if builtPref == nil {
			return nil, fmt.Errorf("psql: BUT ONLY requires a PREFERRING clause")
		}
		keep := butShardFilter(q, s)
		for i := 0; i < s.NumShards(); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sets[i] = keep(i, sets.Resolve(s, i))
		}
	}
	if q.Skyline != nil {
		p, err := q.Skyline.Preference()
		if err != nil {
			return nil, err
		}
		if sets, err = bmo(p, sets, false); err != nil {
			return nil, err
		}
	}
	res, err := wrapResult(finishRows(q, s.Pick(sets.GlobalIDs(s))))
	if err != nil {
		return nil, err
	}
	res.Partial = part
	return res, nil
}

// allIndices returns 0..n-1.
func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// checkAttrs validates every attribute reference in the query against the
// table's schema, so typos fail fast rather than silently matching
// nothing.
func checkAttrs(q *Query, rel relation.Table) error {
	var missing []string
	check := func(attr string) {
		if _, ok := rel.Schema().Index(attr); !ok {
			missing = append(missing, attr)
		}
	}
	for _, a := range q.Select {
		check(a)
	}
	for _, a := range q.GroupingBy {
		check(a)
	}
	for _, o := range q.OrderBy {
		check(o.Attr)
	}
	if q.Preferring != nil {
		if p, err := q.Preferring.Build(); err == nil {
			for _, a := range p.Attrs() {
				check(a)
			}
		}
	}
	for _, c := range q.Cascades {
		if p, err := c.Build(); err == nil {
			for _, a := range p.Attrs() {
				check(a)
			}
		}
	}
	if q.Skyline != nil {
		for _, d := range q.Skyline.Dims {
			check(d.Attr)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("psql: unknown column(s) %v in relation %q", missing, rel.Name())
	}
	return nil
}

// butVectorWorthwhile reports whether a cold compiled quality cascade
// pays for itself: binding a measure vector costs one pass over the
// WHOLE base relation (amortized by the cache across repeated queries),
// so a very small surviving candidate set is cheaper to filter with
// per-tuple Eval. rank.CompiledBindAdvantage is the shared ≈12×
// estimate of compiled-vs-interpreted per-row cost. Already-cached
// vectors bypass this gate (butBound): using them is free at any
// selectivity.
func butVectorWorthwhile(nIdx, total int) bool {
	return nIdx*rank.CompiledBindAdvantage >= total
}

// butShardFilter lowers the query's BUT ONLY tree to the per-shard
// acceptance filter the sharded BMO pass fuses in: each shard threshold-
// scans its maxima through the compiled predicate when the vector bind
// pays off (or is already cached), through interpreted Eval otherwise.
// The base-preference index is resolved once; per-shard binds go through
// the mutex-guarded bound-form caches, so concurrent shard calls from
// the fan-out are safe.
func butShardFilter(q *Query, s *relation.Sharded) engine.ShardFilter {
	byAttr := collectBasePrefs(q)
	return func(i int, idx []int) []int {
		sh := s.Shard(i)
		kept := idx[:0:0]
		if butVectorWorthwhile(len(idx), sh.Len()) || butBound(q.ButOnly, byAttr, sh) {
			if keep, ok := compileBut(q.ButOnly, byAttr, sh); ok {
				for _, j := range idx {
					if keep(j) {
						kept = append(kept, j)
					}
				}
				return kept
			}
		}
		for _, j := range idx {
			if q.ButOnly.Eval(byAttr, sh.Tuple(j)) {
				kept = append(kept, j)
			}
		}
		return kept
	}
}

// butBound reports whether every LEVEL/DISTANCE leaf of the tree already
// has its quality vector cached over the base relation's current
// version; foreign ButExpr nodes report false.
func butBound(e ButExpr, byAttr map[string]pref.Preference, r *relation.Relation) bool {
	switch n := e.(type) {
	case *ButAnd:
		return butBound(n.L, byAttr, r) && butBound(n.R, byAttr, r)
	case *ButOr:
		return butBound(n.L, byAttr, r) && butBound(n.R, byAttr, r)
	case *ButCond:
		return n.C.Bound(byAttr, r)
	}
	return false
}

// compileBut lowers a BUT ONLY condition tree to a compiled per-row
// predicate over the base relation: each LEVEL/DISTANCE leaf binds its
// quality vector through the bound-form cache (quality.Condition.Bind)
// and the connectives combine closures. ok=false for trees containing
// foreign ButExpr implementations, which keep the interpreted Eval path.
func compileBut(e ButExpr, byAttr map[string]pref.Preference, r *relation.Relation) (func(int) bool, bool) {
	switch n := e.(type) {
	case *ButAnd:
		l, ok1 := compileBut(n.L, byAttr, r)
		rr, ok2 := compileBut(n.R, byAttr, r)
		if !ok1 || !ok2 {
			return nil, false
		}
		return func(i int) bool { return l(i) && rr(i) }, true
	case *ButOr:
		l, ok1 := compileBut(n.L, byAttr, r)
		rr, ok2 := compileBut(n.R, byAttr, r)
		if !ok1 || !ok2 {
			return nil, false
		}
		return func(i int) bool { return l(i) || rr(i) }, true
	case *ButCond:
		return n.C.Bind(byAttr, r), true
	}
	return nil, false
}

// collectBasePrefs indexes the base preferences of PREFERRING and CASCADE
// clauses by attribute for BUT ONLY resolution.
func collectBasePrefs(q *Query) map[string]pref.Preference {
	out := make(map[string]pref.Preference)
	add := func(e PrefExpr) {
		p, err := e.Build()
		if err != nil {
			return
		}
		for attr, bp := range quality.BasePrefsByAttr(p) {
			if _, dup := out[attr]; !dup {
				out[attr] = bp
			}
		}
	}
	if q.Preferring != nil {
		add(q.Preferring)
	}
	for _, c := range q.Cascades {
		add(c)
	}
	return out
}

// orderLess compares tuples under the ORDER BY directives.
func orderLess(items []OrderItem, a, b pref.Tuple) bool {
	for _, it := range items {
		av, aok := a.Get(it.Attr)
		bv, bok := b.Get(it.Attr)
		if !aok || !bok {
			continue
		}
		c, ok := pref.CompareValues(av, bv)
		if !ok || c == 0 {
			continue
		}
		if it.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// project applies the SELECT list and DISTINCT.
func project(q *Query, rel *relation.Relation) (*relation.Relation, error) {
	out := rel
	if len(q.Select) > 0 {
		p, err := out.Project(q.Select)
		if err != nil {
			return nil, err
		}
		out = p
	}
	if q.Distinct {
		d, err := out.DistinctProject(out.Schema().Names())
		if err != nil {
			return nil, err
		}
		out = d
	}
	return out, nil
}

// makeCondition builds a BUT ONLY quality condition.
func makeCondition(kind, attr, op string, threshold float64) quality.Condition {
	return quality.Condition{Kind: kind, Attr: attr, Op: op, Threshold: threshold}
}
