package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/pref"
	"repro/internal/relation"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []pref.Value{
		nil,
		"",
		"BMW",
		true,
		false,
		int64(-42),
		float64(3.5),
		math.Inf(-1),
		time.Date(2002, 8, 20, 10, 30, 0, 123456789, time.UTC),
	}
	var buf []byte
	var err error
	for _, v := range vals {
		if buf, err = AppendValue(buf, v); err != nil {
			t.Fatalf("AppendValue(%v): %v", v, err)
		}
	}
	for _, want := range vals {
		var got pref.Value
		if got, buf, err = ReadValue(buf); err != nil {
			t.Fatalf("ReadValue: %v", err)
		}
		if !pref.EqualValues(got, want) {
			t.Fatalf("round trip: got %v (%T), want %v (%T)", got, got, want, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestValueWidening(t *testing.T) {
	// All integer widths widen to int64 on the wire; float32 to float64.
	buf, err := AppendValue(nil, int(7))
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := ReadValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(7) {
		t.Fatalf("int widening: got %v (%T)", v, v)
	}
	buf, err = AppendValue(nil, float32(1.5))
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err = ReadValue(buf); err != nil {
		t.Fatal(err)
	}
	if v != float64(1.5) {
		t.Fatalf("float widening: got %v (%T)", v, v)
	}
}

func TestValueRejectsUnencodable(t *testing.T) {
	if _, err := AppendValue(nil, struct{}{}); err == nil {
		t.Fatal("struct value encoded")
	}
}

func TestValueTruncation(t *testing.T) {
	full, err := AppendValue(nil, "preference")
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ReadValue(full[:cut]); err == nil && cut < len(full) {
			t.Fatalf("truncated value at %d/%d decoded", cut, len(full))
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		SnapVersion: 17,
		SnapLen:     409,
		NRows:       12,
		Cols: []Col{
			{Name: "make", Type: relation.String},
			{Name: "price", Type: relation.Int},
			{Name: "power", Type: relation.Float},
		},
	}
	got, err := DecodeHeader(EncodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("header round trip: got %+v, want %+v", got, h)
	}
}

func TestHeaderStreamSentinel(t *testing.T) {
	h := Header{SnapVersion: 1, SnapLen: 2, NRows: StreamRows}
	got, err := DecodeHeader(EncodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows != StreamRows {
		t.Fatalf("stream sentinel lost: %d", got.NRows)
	}
}

func TestColumnRoundTrip(t *testing.T) {
	vals := []pref.Value{int64(1), nil, int64(3)}
	payload, err := EncodeColumn(2, vals)
	if err != nil {
		t.Fatal(err)
	}
	col, got, err := DecodeColumn(payload, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if col != 2 || !reflect.DeepEqual(got, vals) {
		t.Fatalf("column round trip: col=%d vals=%v", col, got)
	}
	// Trailing garbage must be rejected.
	if _, _, err := DecodeColumn(append(payload, 0), len(vals)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestRowRoundTrip(t *testing.T) {
	row := relation.Row{"BMW", int64(45000), 170.0}
	payload, err := EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(payload, len(row))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, row) {
		t.Fatalf("row round trip: %v", got)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	se, err := DecodeError(EncodeError(CodeOverload, "queue full"))
	if err != nil {
		t.Fatal(err)
	}
	if se.Code != CodeOverload || se.Msg != "queue full" {
		t.Fatalf("error round trip: %+v", se)
	}
	if se.Error() != "OVERLOAD: queue full" {
		t.Fatalf("Error(): %q", se.Error())
	}
}

func TestReadyRoundTrip(t *testing.T) {
	for _, partial := range []string{"", "shard 2/3 failed: disk"} {
		r, err := DecodeReady(EncodeReady(Ready{Partial: partial}))
		if err != nil {
			t.Fatal(err)
		}
		if r.Partial != partial {
			t.Fatalf("ready round trip: %q != %q", r.Partial, partial)
		}
	}
}

func TestInsertRoundTrip(t *testing.T) {
	table, row, err := DecodeInsert(mustEncodeInsert(t, "car", relation.Row{"Audi", int64(2)}))
	if err != nil {
		t.Fatal(err)
	}
	if table != "car" || !reflect.DeepEqual(row, relation.Row{"Audi", int64(2)}) {
		t.Fatalf("insert round trip: %s %v", table, row)
	}
}

func mustEncodeInsert(t *testing.T, table string, row relation.Row) []byte {
	t.Helper()
	payload, err := EncodeInsert(table, row)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestConnFraming(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteFrame(FrameQuery, []byte("SELECT * FROM car")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(FrameQuit, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameQuery || string(payload) != "SELECT * FROM car" {
		t.Fatalf("frame 1: %c %q", typ, payload)
	}
	if typ, payload, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if typ != FrameQuit || len(payload) != 0 {
		t.Fatalf("frame 2: %c %q", typ, payload)
	}
}

func TestConnRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a frame announcing more than MaxFrame.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, FrameQuery})
	if _, _, err := NewConn(&buf).ReadFrame(); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// And a zero-length frame (no type byte).
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, _, err := NewConn(&buf).ReadFrame(); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	in := []Stat{
		{Key: "pool.hits", Val: "812"},
		{Key: "pool.hit_rate", Val: "97.3%"},
		{Key: "shard.car/s0.segment_bytes", Val: "1048576"},
	}
	out, err := DecodeStatus(EncodeStatus(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("status round trip: %v != %v", out, in)
	}
	empty, err := DecodeStatus(EncodeStatus(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty status: %v, %v", empty, err)
	}
	if _, err := DecodeStatus([]byte{}); err == nil {
		t.Fatal("truncated status frame must error")
	}
	if _, err := DecodeStatus([]byte{200}); err == nil {
		t.Fatal("overlong status count must error")
	}
	if _, err := DecodeStatus(append(EncodeStatus(in), 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}
