package wire

import (
	"testing"
	"time"

	"repro/internal/relation"
)

// TestRowBatchRoundTrip pins the batch encoding: incremental appends and
// the one-shot encoder produce the same payload, and decoding recovers
// every row and value.
func TestRowBatchRoundTrip(t *testing.T) {
	rows := []relation.Row{
		{int64(1), "a", 1.5, true, nil},
		{int64(2), "bb", -2.25, false, time.Unix(0, 12345).UTC()},
		{int64(3), "", 0.0, true, "mixed"},
	}
	oneShot, err := EncodeRowBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	var b RowBatch
	for _, row := range rows {
		if err := b.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(rows))
	}
	if string(b.Payload()) != string(oneShot) {
		t.Fatal("incremental and one-shot encodings must agree")
	}
	got, err := DecodeRowBatch(oneShot, len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i, row := range rows {
		for c, v := range row {
			gv := got[i][c]
			if tm, ok := v.(time.Time); ok {
				if !tm.Equal(gv.(time.Time)) {
					t.Fatalf("row %d col %d: %v != %v", i, c, gv, v)
				}
				continue
			}
			if gv != v {
				t.Fatalf("row %d col %d: %v != %v", i, c, gv, v)
			}
		}
	}
	b.Reset()
	if b.Len() != 0 || len(b.Payload()) != 1 {
		t.Fatalf("Reset must empty the batch: len=%d payload=%v", b.Len(), b.Payload())
	}
}

// TestRowBatchEmpty: a zero-row batch round-trips.
func TestRowBatchEmpty(t *testing.T) {
	payload, err := EncodeRowBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeRowBatch(payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("decoded %d rows from an empty batch", len(rows))
	}
}

// TestRowBatchDecodeRejectsMalformed pins the decoder's bounds: a
// truncated payload, a count exceeding the bytes present, trailing
// garbage, and a non-zero count of zero-column rows are all errors.
func TestRowBatchDecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodeRowBatch(nil, 2); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := DecodeRowBatch([]byte{200}, 2); err == nil {
		t.Fatal("truncated uvarint must fail")
	}
	// Count 100 with two bytes of payload: rejected before allocating.
	if _, err := DecodeRowBatch([]byte{100, 0, 0}, 1); err == nil {
		t.Fatal("count exceeding payload must fail")
	}
	if _, err := DecodeRowBatch([]byte{5}, 0); err == nil {
		t.Fatal("zero-column rows must fail")
	}
	good, err := EncodeRowBatch([]relation.Row{{int64(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRowBatch(append(good, 0), 1); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	// Wrong arity: decoding one-column rows as two-column must fail.
	if _, err := DecodeRowBatch(good, 2); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}
