// Package wire is the Preference SQL serving protocol: length-prefixed
// frames over a byte stream, statements in, columnar result frames out.
// A frame is a 4-byte big-endian length followed by a 1-byte type and the
// payload; results travel as one header frame (column names, types, the
// pinned snapshot version) plus one data frame per column, so a client
// can decode straight into column arrays. Errors are typed by a short
// machine-readable code (overload, timeout, cancellation, parse …) so
// clients can distinguish "try again later" from "fix the statement"
// without string matching. The package owns only the encoding; session
// semantics live in internal/server.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/pref"
	"repro/internal/relation"
)

// Frame types, client to server.
const (
	// FrameQuery carries one Preference SQL statement; the server answers
	// with a columnar result (header + column frames) and a ready frame.
	FrameQuery = byte('Q')
	// FrameStream carries a statement to execute progressively: rows come
	// back one row frame at a time as they are confirmed.
	FrameStream = byte('T')
	// FrameInsert carries a row to append to a named table.
	FrameInsert = byte('I')
	// FrameSet carries a session option assignment "key=value".
	FrameSet = byte('S')
	// FrameCancel asks the server to cancel the session's in-flight query.
	FrameCancel = byte('C')
	// FrameQuit announces an orderly disconnect.
	FrameQuit = byte('X')
	// FrameStats asks for a server status report (buffer-pool hit rate,
	// WAL and segment sizes, session counters); the server answers with
	// one status frame and a ready frame.
	FrameStats = byte('A')
)

// Frame types, server to client.
const (
	// FrameHeader opens a result: snapshot pin, row count, column layout.
	FrameHeader = byte('H')
	// FrameColumn carries one whole result column.
	FrameColumn = byte('D')
	// FrameRow carries one streamed result row.
	FrameRow = byte('d')
	// FrameRowBatch carries a chunk of streamed result rows in one frame
	// (uvarint row count, then the rows' tagged values back to back) —
	// large results amortize the per-frame header and the per-flush
	// syscall across a whole chunk instead of paying them per row.
	FrameRowBatch = byte('b')
	// FrameInsertOK acknowledges an insert with the table's new row count.
	FrameInsertOK = byte('K')
	// FrameReady closes a request/response turn: the query (or insert, or
	// set) is done and the session accepts the next frame.
	FrameReady = byte('Z')
	// FrameError reports a typed failure; it also closes the turn.
	FrameError = byte('E')
	// FrameNotice carries an asynchronous server notice (e.g. drain).
	FrameNotice = byte('N')
	// FrameStatus answers a stats frame: ordered key/value pairs.
	FrameStatus = byte('V')
)

// Error codes carried by FrameError.
const (
	// CodeParse: the statement failed to parse.
	CodeParse = "PARSE"
	// CodeExec: the statement failed during execution.
	CodeExec = "EXEC"
	// CodeOverload: admission control shed the query (typed
	// *engine.OverloadError server-side); try again later.
	CodeOverload = "OVERLOAD"
	// CodeTimeout: the query exceeded its deadline.
	CodeTimeout = "TIMEOUT"
	// CodeCancelled: the query was cancelled (client cancel frame or
	// disconnect).
	CodeCancelled = "CANCELLED"
	// CodeProtocol: the client sent a malformed or unexpected frame; the
	// server closes the connection after sending it.
	CodeProtocol = "PROTOCOL"
	// CodeTooLarge: the statement (or frame) exceeded the server's size
	// bound.
	CodeTooLarge = "TOO_LARGE"
	// CodeShutdown: the server is draining and accepts no new queries.
	CodeShutdown = "SHUTDOWN"
	// CodeSet: a session option assignment was invalid.
	CodeSet = "SET"
	// CodeInsert: an insert was rejected (unknown table, arity, type).
	CodeInsert = "INSERT"
)

// MaxFrame bounds any frame's payload; a peer announcing more is
// malformed and the connection is closed. It is deliberately generous —
// result columns of six-figure row counts fit — while still refusing
// absurd lengths before allocating.
const MaxFrame = 1 << 26

// ServerError is a typed failure from the server, reconstructed
// client-side from an error frame.
type ServerError struct {
	// Code is one of the Code* constants.
	Code string
	// Msg is the human-readable cause.
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// Conn frames a byte stream. Reads and writes are independently
// buffered; WriteFrame does not flush (batch a turn's frames, then
// Flush). A Conn's reader must be used from one goroutine at a time;
// writes may come from several (a cancel racing a query) and serialize
// internally.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer

	wmu sync.Mutex
}

// NewConn wraps a byte stream (typically a net.Conn) for framing.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 1<<16), w: bufio.NewWriterSize(rw, 1<<16)}
}

// ReadFrame reads one frame: its type byte and payload.
func (c *Conn) ReadFrame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d outside [1, %d]", n, MaxFrame)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// WriteFrame appends one frame to the write buffer (no flush).
func (c *Conn) WriteFrame(t byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds %d", len(payload), MaxFrame)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = t
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(payload)
	return err
}

// Flush pushes buffered frames to the peer.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}

// Value tags. The wire carries the store's value vocabulary: NULL,
// string, int64 (all integer widths widen), float64, bool and time
// (nanosecond instant).
const (
	tagNull   = byte(0)
	tagString = byte(1)
	tagInt    = byte(2)
	tagFloat  = byte(3)
	tagBool   = byte(4)
	tagTime   = byte(5)
)

// AppendValue appends one tagged value to buf.
func AppendValue(buf []byte, v pref.Value) ([]byte, error) {
	switch t := v.(type) {
	case nil:
		return append(buf, tagNull), nil
	case string:
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		return append(buf, t...), nil
	case bool:
		if t {
			return append(buf, tagBool, 1), nil
		}
		return append(buf, tagBool, 0), nil
	case float32:
		return binary.BigEndian.AppendUint64(append(buf, tagFloat), math.Float64bits(float64(t))), nil
	case float64:
		return binary.BigEndian.AppendUint64(append(buf, tagFloat), math.Float64bits(t)), nil
	case time.Time:
		return binary.BigEndian.AppendUint64(append(buf, tagTime), uint64(t.UnixNano())), nil
	case int:
		return binary.BigEndian.AppendUint64(append(buf, tagInt), uint64(int64(t))), nil
	case int8:
		return binary.BigEndian.AppendUint64(append(buf, tagInt), uint64(int64(t))), nil
	case int16:
		return binary.BigEndian.AppendUint64(append(buf, tagInt), uint64(int64(t))), nil
	case int32:
		return binary.BigEndian.AppendUint64(append(buf, tagInt), uint64(int64(t))), nil
	case int64:
		return binary.BigEndian.AppendUint64(append(buf, tagInt), uint64(t)), nil
	}
	return nil, fmt.Errorf("wire: value %v (%T) not encodable", v, v)
}

// ReadValue decodes one tagged value from buf, returning the rest.
func ReadValue(buf []byte) (pref.Value, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("wire: truncated value")
	}
	tag, buf := buf[0], buf[1:]
	switch tag {
	case tagNull:
		return nil, buf, nil
	case tagString:
		n, k := binary.Uvarint(buf)
		if k <= 0 || uint64(len(buf)-k) < n {
			return nil, nil, fmt.Errorf("wire: truncated string value")
		}
		return string(buf[k : k+int(n)]), buf[k+int(n):], nil
	case tagBool:
		if len(buf) < 1 {
			return nil, nil, fmt.Errorf("wire: truncated bool value")
		}
		return buf[0] != 0, buf[1:], nil
	case tagInt:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("wire: truncated int value")
		}
		return int64(binary.BigEndian.Uint64(buf[:8])), buf[8:], nil
	case tagFloat:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("wire: truncated float value")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf[:8])), buf[8:], nil
	case tagTime:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("wire: truncated time value")
		}
		return time.Unix(0, int64(binary.BigEndian.Uint64(buf[:8]))).UTC(), buf[8:], nil
	}
	return nil, nil, fmt.Errorf("wire: unknown value tag %d", tag)
}

// AppendString appends a uvarint-length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadString decodes a uvarint-length-prefixed string.
func ReadString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf)-k) < n {
		return "", nil, fmt.Errorf("wire: truncated string")
	}
	return string(buf[k : k+int(n)]), buf[k+int(n):], nil
}

// StreamRows marks a header frame whose row count is unknown: rows
// follow as individual row frames until the ready frame.
const StreamRows = ^uint32(0)

// Col is one result column's name and declared type.
type Col struct {
	// Name is the column name.
	Name string
	// Type is the declared column type.
	Type relation.Type
}

// Header is a decoded result-header frame.
type Header struct {
	// SnapVersion is the pinned snapshot's mutation version (flat tables:
	// the relation version; sharded: the sum of shard versions).
	SnapVersion uint64
	// SnapLen is the pinned snapshot's total row count — with a single
	// sequential writer it identifies the exact insert-history prefix the
	// query evaluated over, which is what the torture tests check.
	SnapLen uint64
	// NRows is the result row count, or StreamRows for a progressive
	// result delivered as row frames.
	NRows uint32
	// Cols is the result column layout.
	Cols []Col
}

// EncodeHeader encodes a result-header payload.
func EncodeHeader(h Header) []byte {
	buf := make([]byte, 0, 32+16*len(h.Cols))
	buf = binary.BigEndian.AppendUint64(buf, h.SnapVersion)
	buf = binary.BigEndian.AppendUint64(buf, h.SnapLen)
	buf = binary.BigEndian.AppendUint32(buf, h.NRows)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Cols)))
	for _, c := range h.Cols {
		buf = AppendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	return buf
}

// DecodeHeader decodes a result-header payload.
func DecodeHeader(payload []byte) (Header, error) {
	var h Header
	if len(payload) < 22 {
		return h, fmt.Errorf("wire: truncated header frame")
	}
	h.SnapVersion = binary.BigEndian.Uint64(payload[:8])
	h.SnapLen = binary.BigEndian.Uint64(payload[8:16])
	h.NRows = binary.BigEndian.Uint32(payload[16:20])
	ncols := int(binary.BigEndian.Uint16(payload[20:22]))
	payload = payload[22:]
	h.Cols = make([]Col, ncols)
	for i := range h.Cols {
		name, rest, err := ReadString(payload)
		if err != nil {
			return h, err
		}
		if len(rest) < 1 {
			return h, fmt.Errorf("wire: truncated header column %d", i)
		}
		h.Cols[i] = Col{Name: name, Type: relation.Type(rest[0])}
		payload = rest[1:]
	}
	return h, nil
}

// EncodeColumn encodes one result column (its index plus nrows values).
func EncodeColumn(col int, vals []pref.Value) ([]byte, error) {
	buf := make([]byte, 0, 16+9*len(vals))
	buf = binary.BigEndian.AppendUint16(buf, uint16(col))
	var err error
	for _, v := range vals {
		if buf, err = AppendValue(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeColumn decodes a column frame into its index and nrows values.
func DecodeColumn(payload []byte, nrows int) (int, []pref.Value, error) {
	if len(payload) < 2 {
		return 0, nil, fmt.Errorf("wire: truncated column frame")
	}
	col := int(binary.BigEndian.Uint16(payload[:2]))
	payload = payload[2:]
	vals := make([]pref.Value, nrows)
	var err error
	for i := range vals {
		if vals[i], payload, err = ReadValue(payload); err != nil {
			return 0, nil, err
		}
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes in column frame", len(payload))
	}
	return col, vals, nil
}

// EncodeRow encodes one streamed row frame.
func EncodeRow(row relation.Row) ([]byte, error) {
	buf := make([]byte, 0, 9*len(row))
	var err error
	for _, v := range row {
		if buf, err = AppendValue(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeRow decodes a streamed row frame of ncols values.
func DecodeRow(payload []byte, ncols int) (relation.Row, error) {
	row := make(relation.Row, ncols)
	var err error
	for i := range row {
		if row[i], payload, err = ReadValue(payload); err != nil {
			return nil, err
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in row frame", len(payload))
	}
	return row, nil
}

// RowBatch accumulates streamed rows into one row-batch frame payload.
// Rows are encoded as they arrive (nothing borrowed from the producer
// outlives the Append call), so a yield callback can hand over rows it
// intends to reuse. The zero value is an empty batch; Reset recycles
// the buffer across frames.
type RowBatch struct {
	buf []byte
	n   int
}

// Append encodes one row into the batch.
func (b *RowBatch) Append(row relation.Row) error {
	buf := b.buf
	var err error
	for _, v := range row {
		if buf, err = AppendValue(buf, v); err != nil {
			return err
		}
	}
	b.buf = buf
	b.n++
	return nil
}

// Len returns the number of rows accumulated.
func (b *RowBatch) Len() int { return b.n }

// Payload renders the batch as a row-batch frame payload.
func (b *RowBatch) Payload() []byte {
	out := make([]byte, 0, binary.MaxVarintLen64+len(b.buf))
	out = binary.AppendUvarint(out, uint64(b.n))
	return append(out, b.buf...)
}

// Reset empties the batch, keeping the buffer for reuse.
func (b *RowBatch) Reset() {
	b.buf = b.buf[:0]
	b.n = 0
}

// EncodeRowBatch encodes a row-batch frame payload in one call.
func EncodeRowBatch(rows []relation.Row) ([]byte, error) {
	var b RowBatch
	for _, row := range rows {
		if err := b.Append(row); err != nil {
			return nil, err
		}
	}
	return b.Payload(), nil
}

// DecodeRowBatch decodes a row-batch frame into its rows of ncols
// values each.
func DecodeRowBatch(payload []byte, ncols int) ([]relation.Row, error) {
	n, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, fmt.Errorf("wire: truncated row-batch frame")
	}
	payload = payload[k:]
	// Every encoded value is at least one tag byte, so a well-formed
	// count never exceeds the remaining bytes; reject before allocating.
	if ncols <= 0 && n > 0 {
		return nil, fmt.Errorf("wire: row-batch of %d zero-column rows", n)
	}
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("wire: row-batch count %d exceeds payload", n)
	}
	rows := make([]relation.Row, n)
	var err error
	for i := range rows {
		row := make(relation.Row, ncols)
		for c := range row {
			if row[c], payload, err = ReadValue(payload); err != nil {
				return nil, err
			}
		}
		rows[i] = row
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in row-batch frame", len(payload))
	}
	return rows, nil
}

// EncodeError encodes an error frame payload.
func EncodeError(code, msg string) []byte {
	buf := AppendString(nil, code)
	return AppendString(buf, msg)
}

// DecodeError decodes an error frame payload.
func DecodeError(payload []byte) (*ServerError, error) {
	code, rest, err := ReadString(payload)
	if err != nil {
		return nil, err
	}
	msg, _, err := ReadString(rest)
	if err != nil {
		return nil, err
	}
	return &ServerError{Code: code, Msg: msg}, nil
}

// Ready is a decoded turn-closing frame.
type Ready struct {
	// Partial is the degraded-result report under PolicyPartial ("" for a
	// complete result): a rendering of the missing shards and causes.
	Partial string
}

// EncodeReady encodes a ready frame payload.
func EncodeReady(r Ready) []byte {
	if r.Partial == "" {
		return []byte{0}
	}
	return AppendString([]byte{1}, r.Partial)
}

// DecodeReady decodes a ready frame payload.
func DecodeReady(payload []byte) (Ready, error) {
	if len(payload) < 1 {
		return Ready{}, fmt.Errorf("wire: truncated ready frame")
	}
	if payload[0] == 0 {
		return Ready{}, nil
	}
	partial, _, err := ReadString(payload[1:])
	return Ready{Partial: partial}, err
}

// Stat is one status-report entry. Keys are dotted paths (e.g.
// "pool.hits", "shard.car/0.segment_bytes"); values stay strings so the
// report can mix counters, ratios and human-readable sizes without a
// schema change per metric.
type Stat struct {
	// Key names the metric.
	Key string
	// Val is its rendered value.
	Val string
}

// EncodeStatus encodes a status frame payload: count, then each entry's
// key and value as length-prefixed strings, order preserved.
func EncodeStatus(stats []Stat) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(stats)))
	for _, st := range stats {
		buf = AppendString(buf, st.Key)
		buf = AppendString(buf, st.Val)
	}
	return buf
}

// DecodeStatus decodes a status frame payload.
func DecodeStatus(payload []byte) ([]Stat, error) {
	n, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, fmt.Errorf("wire: truncated status frame")
	}
	payload = payload[k:]
	// Each entry costs at least two length bytes; reject absurd counts
	// before allocating.
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("wire: status count %d exceeds payload", n)
	}
	stats := make([]Stat, n)
	var err error
	for i := range stats {
		if stats[i].Key, payload, err = ReadString(payload); err != nil {
			return nil, err
		}
		if stats[i].Val, payload, err = ReadString(payload); err != nil {
			return nil, err
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in status frame", len(payload))
	}
	return stats, nil
}

// EncodeInsert encodes an insert frame payload: table name plus row.
func EncodeInsert(table string, row relation.Row) ([]byte, error) {
	buf := AppendString(nil, table)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(row)))
	var err error
	for _, v := range row {
		if buf, err = AppendValue(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeInsert decodes an insert frame payload.
func DecodeInsert(payload []byte) (string, relation.Row, error) {
	table, rest, err := ReadString(payload)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < 2 {
		return "", nil, fmt.Errorf("wire: truncated insert frame")
	}
	ncols := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	row := make(relation.Row, ncols)
	for i := range row {
		if row[i], rest, err = ReadValue(rest); err != nil {
			return "", nil, err
		}
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("wire: %d trailing bytes in insert frame", len(rest))
	}
	return table, row, nil
}
