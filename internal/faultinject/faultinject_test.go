package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/relation"
)

func testSharded(t *testing.T) *relation.Sharded {
	t.Helper()
	flat := relation.New("T", relation.MustSchema(relation.Column{Name: "x", Type: relation.Int}))
	for i := 0; i < 8; i++ {
		flat.MustInsert(relation.Row{i})
	}
	s, err := relation.ShardRelation(flat, 2, relation.ByHash("x"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { RemoveAll(s) })
	return s
}

func TestInstallInvokeRemove(t *testing.T) {
	s := testSharded(t)
	cause := errors.New("x")
	Install(s, 0, Fault{Mode: Error, Err: cause})
	if err := Invoke(context.Background(), s, 0); !errors.Is(err, cause) {
		t.Fatalf("faulted shard: %v", err)
	}
	if err := Invoke(context.Background(), s, 1); err != nil {
		t.Fatalf("healthy shard: %v", err)
	}
	if !Remove(s, 0) {
		t.Fatal("Remove reported nothing installed")
	}
	if Remove(s, 0) {
		t.Fatal("double Remove reported an install")
	}
	if err := Invoke(context.Background(), s, 0); err != nil {
		t.Fatalf("after remove: %v", err)
	}
}

func TestDelayWakesOnCancel(t *testing.T) {
	s := testSharded(t)
	Install(s, 0, Fault{Mode: Delay, Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Invoke(ctx, s, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the dying context")
	}
}

func TestPanicMode(t *testing.T) {
	s := testSharded(t)
	Install(s, 1, Fault{Mode: Panic})
	defer func() {
		if recover() == nil {
			t.Fatal("Panic mode did not panic")
		}
	}()
	Invoke(context.Background(), s, 1)
}

func TestParseMode(t *testing.T) {
	for spelling, want := range map[string]Mode{"slow": Delay, "delay": Delay, "hang": Hang, "panic": Panic, "error": Error} {
		got, err := ParseMode(spelling)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", spelling, got, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("unknown mode parsed")
	}
}
