// Package faultinject installs per-shard faults on sharded tables for
// the failure-mode test suites: a registered fault fires at the entry
// of every ctx-aware shard worker touching that (table, shard), so
// tests can make a shard slow, hang it until cancellation, kill it with
// a panic, or fail it with an error — without touching the evaluation
// code under test. The registry is test-only by convention: production
// paths pay a single atomic load while it is empty, and nothing outside
// _test files and the prefbench demo flags should install hooks.
package faultinject

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// Mode selects what an installed fault does when a shard worker enters.
type Mode int

// Fault modes.
const (
	// Delay sleeps for Latency (waking early if the worker's context
	// dies first, returning its error) — the "slow shard".
	Delay Mode = iota
	// Hang blocks until the worker's context is cancelled and returns
	// its error — the "dead but reachable" shard that only a deadline
	// can unstick.
	Hang
	// Panic panics with a recognizable value — the "crashed shard"; the
	// fan-out's recovery must contain it as a per-shard error.
	Panic
	// Error returns Err immediately — the cleanly failing shard.
	Error
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case Delay:
		return "slow"
	case Hang:
		return "hang"
	case Panic:
		return "panic"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode resolves the -faults flag spelling of a mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "slow", "delay":
		return Delay, nil
	case "hang":
		return Hang, nil
	case "panic":
		return Panic, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("faultinject: unknown mode %q (want slow|hang|panic|error)", s)
}

// Fault is one installed per-shard fault.
type Fault struct {
	// Mode selects the failure behaviour.
	Mode Mode
	// Latency is the Delay mode's sleep.
	Latency time.Duration
	// Err is the Error mode's return value; a default is synthesized
	// when nil.
	Err error
}

// key addresses one shard of one sharded table.
type key struct {
	table *relation.Sharded
	shard int
}

var (
	mu        sync.Mutex
	installed map[key]Fault
	// active mirrors len(installed) so Invoke costs one atomic load on
	// the (normal) no-faults path instead of a mutex acquisition per
	// shard worker.
	active atomic.Int64
)

// Install registers a fault on one shard of the table, replacing any
// fault already installed there. Callers must Remove (or RemoveAll)
// when done — typically in a test cleanup — so faults never leak across
// tests.
func Install(s *relation.Sharded, shard int, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if installed == nil {
		installed = make(map[key]Fault)
	}
	k := key{s, shard}
	if _, dup := installed[k]; !dup {
		active.Add(1)
	}
	installed[k] = f
}

// Remove uninstalls the fault on one shard of the table, reporting
// whether one was installed.
func Remove(s *relation.Sharded, shard int) bool {
	mu.Lock()
	defer mu.Unlock()
	k := key{s, shard}
	if _, ok := installed[k]; !ok {
		return false
	}
	delete(installed, k)
	active.Add(-1)
	return true
}

// RemoveAll uninstalls every fault of the table; test cleanups use it.
func RemoveAll(s *relation.Sharded) {
	mu.Lock()
	defer mu.Unlock()
	for k := range installed {
		if k.table == s {
			delete(installed, k)
			active.Add(-1)
		}
	}
}

// Invoke fires the fault installed on (table, shard), if any: ctx-aware
// shard workers call it on entry. With no faults installed anywhere it
// is one atomic load.
func Invoke(ctx context.Context, s *relation.Sharded, shard int) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := installed[key{s, shard}]
	mu.Unlock()
	if !ok {
		return nil
	}
	switch f.Mode {
	case Delay:
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case Hang:
		<-ctx.Done()
		return ctx.Err()
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic on shard %d of %s", shard, s.Name()))
	case Error:
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("faultinject: injected error on shard %d of %s", shard, s.Name())
	}
	return nil
}
