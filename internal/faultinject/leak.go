package faultinject

import (
	"fmt"
	"runtime"
	"time"
)

// LeakCheck snapshots the goroutine count and returns a verifier for a
// test's defer: the verifier re-counts with settle retries (workers
// legitimately need a moment to observe cancellation and exit) and
// errors when goroutines outlive the test body — the abandoned-stream
// leak the Close/cancel machinery exists to prevent. Coarse by design:
// it compares counts, not stacks, so tests using it should not start
// unrelated long-lived goroutines between the snapshot and the check.
func LeakCheck() func() error {
	before := runtime.NumGoroutine()
	return func() error {
		deadline := time.Now().Add(2 * time.Second)
		var now int
		for {
			if now = runtime.NumGoroutine(); now <= before {
				return nil
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("faultinject: goroutine leak: %d before, %d after settle", before, now)
	}
}
