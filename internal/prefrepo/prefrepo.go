// Package prefrepo is a persistent preference repository, the first item
// on the paper's §7 roadmap: named preference terms with descriptions,
// stored as JSON with the terms in pterm syntax, so personal wish lists
// (Example 6's Q1, Q1*, …) survive across sessions and can be composed by
// reference.
package prefrepo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/pref"
	"repro/internal/pterm"
)

// Entry is one stored preference.
type Entry struct {
	// Name is the repository key.
	Name string `json:"name"`
	// Term is the preference in pterm syntax.
	Term string `json:"term"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Owner identifies the party holding the preference (customers and
	// vendors may both store preferences; conflicts are fine).
	Owner string `json:"owner,omitempty"`
	// Created is the insertion timestamp.
	Created time.Time `json:"created"`
}

// Repo is an in-memory preference repository with JSON persistence. The
// zero value is not ready; use New.
type Repo struct {
	entries map[string]Entry
}

// New creates an empty repository.
func New() *Repo {
	return &Repo{entries: make(map[string]Entry)}
}

// Put stores a preference under a name, validating that the term
// serializes (and therefore re-parses). Existing entries are replaced.
func (r *Repo) Put(name, description, owner string, p pref.Preference) error {
	if name == "" {
		return fmt.Errorf("prefrepo: entry name must not be empty")
	}
	term, err := pterm.Marshal(p)
	if err != nil {
		return fmt.Errorf("prefrepo: preference %q is not storable: %w", name, err)
	}
	r.entries[name] = Entry{
		Name:        name,
		Term:        term,
		Description: description,
		Owner:       owner,
		Created:     time.Now().UTC(),
	}
	return nil
}

// PutTerm stores a preference given directly in pterm syntax, validating
// it parses.
func (r *Repo) PutTerm(name, description, owner, term string) error {
	if name == "" {
		return fmt.Errorf("prefrepo: entry name must not be empty")
	}
	if _, err := pterm.Parse(term); err != nil {
		return fmt.Errorf("prefrepo: term for %q does not parse: %w", name, err)
	}
	r.entries[name] = Entry{
		Name:        name,
		Term:        term,
		Description: description,
		Owner:       owner,
		Created:     time.Now().UTC(),
	}
	return nil
}

// Get parses and returns the named preference.
func (r *Repo) Get(name string) (pref.Preference, error) {
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("prefrepo: no preference named %q", name)
	}
	p, err := pterm.Parse(e.Term)
	if err != nil {
		return nil, fmt.Errorf("prefrepo: stored term for %q is corrupt: %w", name, err)
	}
	return p, nil
}

// Entry returns the raw entry.
func (r *Repo) Entry(name string) (Entry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Delete removes an entry; deleting a missing entry is a no-op.
func (r *Repo) Delete(name string) {
	delete(r.entries, name)
}

// Len returns the number of stored preferences.
func (r *Repo) Len() int { return len(r.entries) }

// List returns all entries sorted by name.
func (r *Repo) List() []Entry {
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ListOwner returns the entries of one owner, sorted by name.
func (r *Repo) ListOwner(owner string) []Entry {
	var out []Entry
	for _, e := range r.List() {
		if e.Owner == owner {
			out = append(out, e)
		}
	}
	return out
}

// Compose builds an accumulated preference from stored entries: mode
// "pareto" combines them as equally important (⊗), mode "prioritized"
// in the given order of importance (&). This is the repository-level
// counterpart of the paper's preference-engineering workflow.
func (r *Repo) Compose(mode string, names ...string) (pref.Preference, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("prefrepo: compose needs at least one name")
	}
	ps := make([]pref.Preference, len(names))
	for i, n := range names {
		p, err := r.Get(n)
		if err != nil {
			return nil, err
		}
		ps[i] = p
	}
	switch mode {
	case "pareto":
		return pref.ParetoAll(ps...), nil
	case "prioritized":
		return pref.PrioritizedAll(ps...), nil
	}
	return nil, fmt.Errorf("prefrepo: unknown compose mode %q (want pareto or prioritized)", mode)
}

// Save writes the repository as indented JSON.
func (r *Repo) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.List())
}

// Load reads a repository from JSON, validating every term.
func Load(rd io.Reader) (*Repo, error) {
	var entries []Entry
	if err := json.NewDecoder(rd).Decode(&entries); err != nil {
		return nil, fmt.Errorf("prefrepo: decoding repository: %w", err)
	}
	r := New()
	for _, e := range entries {
		if e.Name == "" {
			return nil, fmt.Errorf("prefrepo: entry with empty name")
		}
		if _, err := pterm.Parse(e.Term); err != nil {
			return nil, fmt.Errorf("prefrepo: entry %q has a corrupt term: %w", e.Name, err)
		}
		r.entries[e.Name] = e
	}
	return r, nil
}

// SaveFile writes the repository to a file.
func (r *Repo) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a repository file; a missing file yields an empty
// repository, so first runs need no setup.
func LoadFile(path string) (*Repo, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
