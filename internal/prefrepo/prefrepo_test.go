package prefrepo

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/pref"
)

func julia() pref.Preference {
	return pref.Prioritized(
		pref.NEG("color", "gray"),
		pref.Pareto(pref.LOWEST("price"), pref.AROUND("horsepower", 100)),
	)
}

func TestPutGetRoundTrip(t *testing.T) {
	r := New()
	if err := r.Put("julia-q1", "Julia's wish list", "julia", julia()); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("julia-q1")
	if err != nil {
		t.Fatal(err)
	}
	g := algebra.NewGen(1, 4, "color", "price", "horsepower")
	if w := algebra.FindInequivalence(julia(), got, g.Universe(12)); w != nil {
		t.Fatalf("stored preference changed: %s", w.Reason)
	}
}

func TestPutValidation(t *testing.T) {
	r := New()
	if err := r.Put("", "", "", julia()); err == nil {
		t.Error("empty names must be rejected")
	}
	score := pref.SCORE("a", "f", func(pref.Value) float64 { return 0 })
	if err := r.Put("s", "", "", score); err == nil {
		t.Error("unserializable preferences must be rejected")
	}
	if err := r.PutTerm("bad", "", "", "WRONG("); err == nil {
		t.Error("unparseable terms must be rejected")
	}
	if err := r.PutTerm("", "", "", "LOWEST(a)"); err == nil {
		t.Error("empty name in PutTerm must be rejected")
	}
	if err := r.PutTerm("ok", "", "", "LOWEST(a)"); err != nil {
		t.Errorf("valid term rejected: %v", err)
	}
}

func TestGetMissingAndDelete(t *testing.T) {
	r := New()
	if _, err := r.Get("nope"); err == nil {
		t.Error("missing entry must error")
	}
	r.PutTerm("x", "", "", "LOWEST(a)")
	if r.Len() != 1 {
		t.Error("Len")
	}
	r.Delete("x")
	if r.Len() != 0 {
		t.Error("Delete")
	}
	r.Delete("x") // no-op
}

func TestListAndOwners(t *testing.T) {
	r := New()
	r.PutTerm("b-pref", "", "leslie", "LOWEST(price)")
	r.PutTerm("a-pref", "", "julia", "NEG(color, {'gray'})")
	r.PutTerm("c-pref", "", "julia", "HIGHEST(year)")
	names := []string{}
	for _, e := range r.List() {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "a-pref,b-pref,c-pref" {
		t.Errorf("List order: %v", names)
	}
	if got := r.ListOwner("julia"); len(got) != 2 {
		t.Errorf("julia owns %d", len(got))
	}
	if e, ok := r.Entry("a-pref"); !ok || e.Owner != "julia" {
		t.Error("Entry accessor")
	}
}

func TestCompose(t *testing.T) {
	r := New()
	r.PutTerm("color", "", "", "NEG(color, {'gray'})")
	r.PutTerm("price", "", "", "LOWEST(price)")
	p, err := r.Compose("pareto", "color", "price")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "⊗") {
		t.Errorf("pareto compose = %s", p)
	}
	p, err = r.Compose("prioritized", "color", "price")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "&") {
		t.Errorf("prioritized compose = %s", p)
	}
	if _, err := r.Compose("pareto"); err == nil {
		t.Error("empty compose must fail")
	}
	if _, err := r.Compose("pareto", "missing"); err == nil {
		t.Error("missing names must fail")
	}
	if _, err := r.Compose("wrong", "color"); err == nil {
		t.Error("unknown mode must fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := New()
	r.Put("julia-q1", "wish list", "julia", julia())
	r.PutTerm("dealer", "domain knowledge", "michael", "HIGHEST(year) & HIGHEST(commission)")
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d entries", back.Len())
	}
	e, _ := back.Entry("julia-q1")
	if e.Description != "wish list" || e.Owner != "julia" {
		t.Error("metadata lost")
	}
	if _, err := back.Get("dealer"); err != nil {
		t.Errorf("loaded term must parse: %v", err)
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := Load(strings.NewReader(`[{"name": "x", "term": "WRONG("}]`)); err == nil {
		t.Error("corrupt terms must fail")
	}
	if _, err := Load(strings.NewReader(`[{"name": "", "term": "LOWEST(a)"}]`)); err == nil {
		t.Error("empty names must fail")
	}
}

func TestFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prefs.json")
	// Missing file loads as empty.
	r, err := LoadFile(path)
	if err != nil || r.Len() != 0 {
		t.Fatalf("missing file: %v, %d entries", err, r.Len())
	}
	r.PutTerm("x", "", "", "LOWEST(a)")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil || back.Len() != 1 {
		t.Fatalf("reload: %v, %d entries", err, back.Len())
	}
}
