package skyline

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
)

func randRel(seed int64, n int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		rel.MustInsert(relation.Row{rng.Float64(), rng.Float64()})
	}
	return rel
}

func TestProgressiveMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rel := randRel(seed, 200)
		c, _ := Parse("a MIN, b MAX")
		var got []int
		n, err := Progressive(c, rel, func(row int) bool {
			got = append(got, row)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Compute(c, rel, engine.Naive)
		if err != nil {
			t.Fatal(err)
		}
		if n != want.Len() || len(got) != want.Len() {
			t.Fatalf("seed %d: progressive emitted %d rows, batch found %d", seed, n, want.Len())
		}
		// Same set of rows: compare sorted indices against batch membership.
		sort.Ints(got)
		batch := map[string]bool{}
		for i := 0; i < want.Len(); i++ {
			a, _ := want.Tuple(i).Get("a")
			b, _ := want.Tuple(i).Get("b")
			batch[keyOf(a, b)] = true
		}
		for _, row := range got {
			a, _ := rel.Tuple(row).Get("a")
			b, _ := rel.Tuple(row).Get("b")
			if !batch[keyOf(a, b)] {
				t.Fatalf("seed %d: progressive emitted non-skyline row %d", seed, row)
			}
		}
	}
}

func keyOf(a, b any) string {
	return string(rune(int(a.(float64)*1e9))) + "/" + string(rune(int(b.(float64)*1e9)))
}

func TestProgressiveEveryPrefixIsValid(t *testing.T) {
	// The defining property of progressive computation: each emitted row
	// is already final (a true skyline member) at emission time.
	rel := randRel(42, 500)
	c, _ := Parse("a MIN, b MIN")
	want, _ := Compute(c, rel, engine.Naive)
	inSkyline := map[int]bool{}
	for i := 0; i < rel.Len(); i++ {
		for j := 0; j < want.Len(); j++ {
			same := true
			for _, col := range []string{"a", "b"} {
				x, _ := rel.Tuple(i).Get(col)
				y, _ := want.Tuple(j).Get(col)
				if x != y {
					same = false
					break
				}
			}
			if same {
				inSkyline[i] = true
			}
		}
	}
	_, err := Progressive(c, rel, func(row int) bool {
		if !inSkyline[row] {
			t.Fatalf("row %d emitted but not in the skyline", row)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	rel := randRel(7, 1000)
	c, _ := Parse("a MIN, b MIN")
	calls := 0
	n, err := Progressive(c, rel, func(row int) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || calls != 3 {
		t.Errorf("early stop: emitted %d, calls %d", n, calls)
	}
}

func TestFirstK(t *testing.T) {
	rel := randRel(9, 500)
	c, _ := Parse("a MIN, b MIN")
	rows, err := FirstK(c, rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("FirstK(2) = %d rows", len(rows))
	}
	// Asking for more than the skyline holds returns the whole skyline.
	want, _ := Compute(c, rel, engine.BNL)
	rows, err = FirstK(c, rel, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want.Len() {
		t.Errorf("FirstK(∞) = %d, skyline = %d", len(rows), want.Len())
	}
}

func TestProgressiveBadClause(t *testing.T) {
	rel := randRel(1, 10)
	if _, err := Progressive(Clause{}, rel, func(int) bool { return true }); err == nil {
		t.Error("empty clause must fail")
	}
	if _, err := FirstK(Clause{}, rel, 3); err == nil {
		t.Error("FirstK with empty clause must fail")
	}
}
