package skyline

import (
	"sort"

	"repro/internal/pref"
	"repro/internal/relation"
)

// Progressive computes the skyline incrementally in the spirit of [TEO01]
// ("Efficient Progressive Skyline Computation", cited in §6.1): rows are
// presorted by a monotone score so that no later row can dominate an
// earlier one, and every confirmed skyline member is emitted immediately —
// first results arrive after a sort plus a few comparisons rather than
// after the full computation. yield receives the row index in R and
// returns false to stop early (e.g. after the first k skyline members).
// It returns the number of rows emitted.
func Progressive(c Clause, r *relation.Relation, yield func(row int) bool) (int, error) {
	p, err := c.Preference()
	if err != nil {
		return 0, err
	}
	// Entropy sort: descending sum of per-dimension maximize-scores. If
	// x <P y then every dimension scores y ≥ x with one >, so y's sum is
	// strictly larger and y precedes x — a later row never dominates an
	// earlier one.
	dims := make([]pref.Scorer, len(c.Dims))
	for i, d := range c.Dims {
		if d.Dir == Min {
			dims[i] = pref.LOWEST(d.Attr)
		} else {
			dims[i] = pref.HIGHEST(d.Attr)
		}
	}
	type cand struct {
		row int
		sum float64
	}
	cands := make([]cand, r.Len())
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		var sum float64
		for _, d := range dims {
			sum += d.ScoreOf(t)
		}
		cands[i] = cand{i, sum}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].sum > cands[b].sum })

	emitted := 0
	var confirmed []int
	for _, c := range cands {
		tc := r.Tuple(c.row)
		dominated := false
		for _, w := range confirmed {
			if p.Less(tc, r.Tuple(w)) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		confirmed = append(confirmed, c.row)
		emitted++
		if !yield(c.row) {
			break
		}
	}
	return emitted, nil
}

// FirstK returns the first k skyline rows in progressive emission order,
// the "show something immediately" use case of progressive skylines.
func FirstK(c Clause, r *relation.Relation, k int) ([]int, error) {
	var out []int
	_, err := Progressive(c, r, func(row int) bool {
		out = append(out, row)
		return len(out) < k
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
