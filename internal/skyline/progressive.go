package skyline

import (
	"repro/internal/engine"
	"repro/internal/relation"
)

// Progressive computes the skyline incrementally in the spirit of [TEO01]
// ("Efficient Progressive Skyline Computation", cited in §6.1): rows are
// presorted by a monotone score so that no later row can dominate an
// earlier one, and every confirmed skyline member is emitted immediately —
// first results arrive after a sort plus a few comparisons rather than
// after the full computation. yield receives the row index in R and
// returns false to stop early (e.g. after the first k skyline members).
// It returns the number of rows emitted.
//
// It is a thin wrapper over the engine's general streaming evaluator: a
// skyline clause is a chain product, whose entropy key (the sum of the
// per-dimension maximize-scores) makes every surviving candidate final on
// first sight.
func Progressive(c Clause, r *relation.Relation, yield func(row int) bool) (int, error) {
	st, err := Stream(c, r)
	if err != nil {
		return 0, err
	}
	return st.Each(yield), nil
}

// Stream starts progressive skyline evaluation and returns the row stream;
// the front-ends use it to serve first results before the scan completes.
func Stream(c Clause, r *relation.Relation) (*engine.Stream, error) {
	p, err := c.Preference()
	if err != nil {
		return nil, err
	}
	return engine.EvalStream(p, r), nil
}

// FirstK returns the first k skyline rows in progressive emission order,
// the "show something immediately" use case of progressive skylines.
func FirstK(c Clause, r *relation.Relation, k int) ([]int, error) {
	var out []int
	_, err := Progressive(c, r, func(row int) bool {
		out = append(out, row)
		return len(out) < k
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
