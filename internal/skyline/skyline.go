// Package skyline implements the 'SKYLINE OF' clause of [BKS01], the
// restricted non-strict form of Pareto accumulation the paper discusses in
// §6.1: P = P1 ⊗ P2 ⊗ … ⊗ Pk where each Pi is a LOWEST or HIGHEST chain.
// On this fragment the paper's equality-based Pareto semantics and classic
// coordinate-wise dominance coincide, and the efficient maxima algorithms
// of [KLP75], [BKS01] and [TEO01] apply.
package skyline

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/pref"
	"repro/internal/relation"
)

// Direction states whether a skyline dimension is minimized or maximized.
type Direction int

// Dimension directions.
const (
	Min Direction = iota
	Max
)

// String renders the direction keyword.
func (d Direction) String() string {
	if d == Min {
		return "MIN"
	}
	return "MAX"
}

// Dim is one SKYLINE OF dimension.
type Dim struct {
	Attr string
	Dir  Direction
}

// String renders the dimension in SKYLINE OF syntax.
func (d Dim) String() string { return d.Attr + " " + d.Dir.String() }

// Clause is a parsed SKYLINE OF clause.
type Clause struct {
	Dims []Dim
}

// String renders the clause.
func (c Clause) String() string {
	parts := make([]string, len(c.Dims))
	for i, d := range c.Dims {
		parts[i] = d.String()
	}
	return "SKYLINE OF " + strings.Join(parts, ", ")
}

// Preference converts the clause to its equivalent Pareto accumulation of
// LOWEST/HIGHEST chains.
func (c Clause) Preference() (pref.Preference, error) {
	if len(c.Dims) == 0 {
		return nil, fmt.Errorf("skyline: SKYLINE OF requires at least one dimension")
	}
	ps := make([]pref.Preference, len(c.Dims))
	for i, d := range c.Dims {
		if d.Dir == Min {
			ps[i] = pref.LOWEST(d.Attr)
		} else {
			ps[i] = pref.HIGHEST(d.Attr)
		}
	}
	return pref.ParetoAll(ps...), nil
}

// Compute evaluates the skyline of R with the chosen algorithm.
func Compute(c Clause, r *relation.Relation, alg engine.Algorithm) (*relation.Relation, error) {
	p, err := c.Preference()
	if err != nil {
		return nil, err
	}
	return engine.BMO(p, r, alg), nil
}

// Parse parses the dimension list of a SKYLINE OF clause, e.g.
// "price MIN, horsepower MAX". A missing direction defaults to MIN, as in
// [BKS01].
func Parse(dims string) (Clause, error) {
	var c Clause
	for _, part := range strings.Split(dims, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		switch len(fields) {
		case 0:
			return Clause{}, fmt.Errorf("skyline: empty dimension in %q", dims)
		case 1:
			c.Dims = append(c.Dims, Dim{Attr: fields[0], Dir: Min})
		case 2:
			var dir Direction
			switch strings.ToUpper(fields[1]) {
			case "MIN":
				dir = Min
			case "MAX":
				dir = Max
			default:
				return Clause{}, fmt.Errorf("skyline: unknown direction %q (want MIN or MAX)", fields[1])
			}
			c.Dims = append(c.Dims, Dim{Attr: fields[0], Dir: dir})
		default:
			return Clause{}, fmt.Errorf("skyline: malformed dimension %q", part)
		}
	}
	return c, nil
}
