package skyline

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/pref"
	"repro/internal/relation"
)

func TestParse(t *testing.T) {
	c, err := Parse("price MIN, power MAX, age")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Dims) != 3 {
		t.Fatalf("dims = %d", len(c.Dims))
	}
	if c.Dims[0].Dir != Min || c.Dims[1].Dir != Max || c.Dims[2].Dir != Min {
		t.Errorf("directions = %v", c.Dims)
	}
	if c.String() != "SKYLINE OF price MIN, power MAX, age MIN" {
		t.Errorf("rendering %q", c.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "price WRONG", "price MIN MAX extra", ","} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestPreferenceConversion(t *testing.T) {
	c, _ := Parse("a MIN, b MAX")
	p, err := c.Preference()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "LOWEST(a)") || !strings.Contains(p.String(), "HIGHEST(b)") {
		t.Errorf("converted preference %s", p)
	}
	if _, err := (Clause{}).Preference(); err == nil {
		t.Error("empty clause must fail")
	}
}

func TestComputeMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	for i := 0; i < 300; i++ {
		rel.MustInsert(relation.Row{rng.Float64(), rng.Float64()})
	}
	c, _ := Parse("a MIN, b MIN")
	got, err := Compute(c, rel, engine.DNC)
	if err != nil {
		t.Fatal(err)
	}
	want := engine.BMO(pref.Pareto(pref.LOWEST("a"), pref.LOWEST("b")), rel, engine.Naive)
	if got.Len() != want.Len() {
		t.Errorf("skyline = %d rows, engine = %d", got.Len(), want.Len())
	}
	if got.Len() == 0 {
		t.Error("skyline of non-empty input must be non-empty")
	}
}

func TestDirectionString(t *testing.T) {
	if Min.String() != "MIN" || Max.String() != "MAX" {
		t.Error("direction rendering")
	}
	if d := (Dim{Attr: "x", Dir: Max}); d.String() != "x MAX" {
		t.Error("dim rendering")
	}
}
