package core

import (
	"testing"

	"repro/internal/relation"
)

func sampleCars() *Relation {
	return relation.New("car", relation.MustSchema(
		relation.Column{Name: "color", Type: relation.String},
		relation.Column{Name: "price", Type: relation.Int},
		relation.Column{Name: "mileage", Type: relation.Int},
		relation.Column{Name: "make", Type: relation.String},
	)).MustInsert(
		relation.Row{"red", int64(40000), int64(15000), "Audi"},
		relation.Row{"gray", int64(35000), int64(30000), "BMW"},
		relation.Row{"red", int64(20000), int64(10000), "Audi"},
		relation.Row{"blue", int64(15000), int64(35000), "BMW"},
	)
}

func TestFacadeEndToEnd(t *testing.T) {
	cars := sampleCars()
	wish := Prioritized(
		NEG("color", "gray"),
		Pareto(LOWEST("price"), LOWEST("mileage")),
	)
	best := BMO(wish, cars)
	if best.Len() == 0 || best.Len() == cars.Len() {
		t.Fatalf("BMO must filter without emptying: %d of %d", best.Len(), cars.Len())
	}
	for i := 0; i < best.Len(); i++ {
		if c, _ := best.Tuple(i).Get("color"); c == "gray" {
			t.Error("gray must be relaxed away (non-gray alternatives exist)")
		}
	}
	if got := BMOWith(wish, cars, Naive); got.Len() != best.Len() {
		t.Error("BMOWith(Naive) must agree with Auto")
	}
}

func TestFacadeGroupByAndCascade(t *testing.T) {
	cars := sampleCars()
	perMake := GroupBy(LOWEST("price"), []string{"make"}, cars)
	if perMake.Len() != 2 {
		t.Errorf("cheapest per make = %d rows, want 2", perMake.Len())
	}
	cascaded := Cascade(cars, POS("color", "red"), LOWEST("price"))
	if cascaded.Len() != 1 {
		t.Errorf("cascade = %d rows, want 1", cascaded.Len())
	}
}

func TestFacadeQualityAndRank(t *testing.T) {
	cars := sampleCars()
	if size := ResultSize(LOWEST("price"), cars); size != 1 {
		t.Errorf("ResultSize = %d", size)
	}
	pm := PerfectMatches(POS("color", "red"), cars)
	if pm.Len() != 2 {
		t.Errorf("perfect matches = %d", pm.Len())
	}
	top := TopK(HIGHEST("price"), cars, 2)
	if len(top) != 2 || top[0].Score != 40000 {
		t.Errorf("TopK = %v", top)
	}
	tup := MapTuple{"color": "red"}
	if l, ok := Level(POS("color", "red"), tup); !ok || l != 1 {
		t.Errorf("Level = %d, %v", l, ok)
	}
	if d, ok := Distance(AROUND("price", 100), MapTuple{"price": int64(90)}); !ok || d != 10 {
		t.Errorf("Distance = %v, %v", d, ok)
	}
}

func TestFacadeGraph(t *testing.T) {
	cars := sampleCars()
	g := BetterThanGraph(Pareto(LOWEST("price"), LOWEST("mileage")), cars)
	if g.MaxLevel() < 2 {
		t.Errorf("graph should have at least 2 levels, got %d", g.MaxLevel())
	}
}

func TestFacadeConstructorsCovered(t *testing.T) {
	// Error-returning constructors surface through the façade unchanged.
	if _, err := POSNEG("c", []Value{"a"}, []Value{"a"}); err == nil {
		t.Error("POSNEG overlap must error")
	}
	if _, err := POSPOS("c", []Value{"a"}, []Value{"a"}); err == nil {
		t.Error("POSPOS overlap must error")
	}
	if _, err := BETWEEN("p", 5, 1); err == nil {
		t.Error("BETWEEN inverted must error")
	}
	if _, err := EXPLICIT("c", []Edge{{Worse: "a", Better: "a"}}); err == nil {
		t.Error("EXPLICIT self-loop must error")
	}
	if _, err := Intersection(LOWEST("a"), LOWEST("b")); err == nil {
		t.Error("Intersection attr mismatch must error")
	}
	if _, err := DisjointUnion(LOWEST("a"), LOWEST("b")); err == nil {
		t.Error("DisjointUnion attr mismatch must error")
	}
	if _, err := LinearSum("x", AntiChainSet("a", "v"), AntiChainSet("b", "v")); err == nil {
		t.Error("LinearSum overlap must error")
	}
	// Value constructors.
	ps := []Preference{
		ParetoAll(LOWEST("a"), HIGHEST("b")),
		PrioritizedAll(LOWEST("a"), HIGHEST("b")),
		Dual(LOWEST("a")),
		AntiChain("a"),
		GroupByPref([]string{"a"}, LOWEST("b")),
		Rank("F", WeightedSum(1, 2), AROUND("a", 0), HIGHEST("b")),
		SCORE("a", "id", func(Value) float64 { return 0 }),
	}
	for _, p := range ps {
		if p == nil || len(p.Attrs()) == 0 {
			t.Errorf("constructor produced invalid preference %v", p)
		}
	}
}
