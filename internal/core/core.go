// Package core is the library's façade: one import giving downstream users
// the complete Kießling preference model (internal/pref), the BMO query
// engine (internal/engine), quality functions (internal/quality) and the
// ranked query model (internal/rank) under a single, documented API.
//
// A minimal session:
//
//	wish := core.Prioritized(
//	    core.NEG("color", "gray"),
//	    core.Pareto(core.LOWEST("price"), core.LOWEST("mileage")),
//	)
//	best := core.BMO(wish, cars)      // σ[P](R): best matches only
//
// The sub-packages remain importable directly for advanced use (algebraic
// rewriting, decomposition evaluation, Preference SQL, Preference XPath).
package core

import (
	"repro/internal/engine"
	"repro/internal/pref"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/relation"
)

// Core model types, re-exported.
type (
	// Preference is a strict partial order P = (A, <P); see Definition 1.
	Preference = pref.Preference
	// Scorer is a preference whose order a real-valued function induces.
	Scorer = pref.Scorer
	// Tuple supplies attribute values to preference evaluation.
	Tuple = pref.Tuple
	// MapTuple is an ad-hoc Tuple backed by a map.
	MapTuple = pref.MapTuple
	// Value is a domain value (string, numeric, bool or time.Time).
	Value = pref.Value
	// Edge is one explicit better-than pair (worse, better).
	Edge = pref.Edge
	// Graph is a better-than graph (Hasse diagram) over a finite tuple set.
	Graph = pref.Graph
	// Relation is an in-memory database set.
	Relation = relation.Relation
	// Algorithm selects the physical BMO evaluation strategy.
	Algorithm = engine.Algorithm
)

// Base preference constructors (Definitions 6 and 7).
var (
	// POS prefers values from a favorite set.
	POS = pref.POS
	// NEG avoids values from a dislike set.
	NEG = pref.NEG
	// POSNEG layers favorites over dislikes; errors on overlapping sets.
	POSNEG = pref.POSNEG
	// POSPOS layers favorites over second-best alternatives.
	POSPOS = pref.POSPOS
	// EXPLICIT hand-crafts a finite better-than graph.
	EXPLICIT = pref.EXPLICIT
	// AROUND prefers values closest to a target.
	AROUND = pref.AROUND
	// AROUNDTime is AROUND over date/time targets.
	AROUNDTime = pref.AROUNDTime
	// BETWEEN prefers values inside an interval, then by boundary distance.
	BETWEEN = pref.BETWEEN
	// LOWEST prefers smaller values; a chain.
	LOWEST = pref.LOWEST
	// HIGHEST prefers larger values; a chain.
	HIGHEST = pref.HIGHEST
	// SCORE orders by an arbitrary scoring function.
	SCORE = pref.SCORE
)

// Complex preference constructors (§3.3).
var (
	// Pareto combines two equally important preferences (⊗).
	Pareto = pref.Pareto
	// ParetoAll folds ⊗ over two or more preferences.
	ParetoAll = pref.ParetoAll
	// Prioritized makes the left preference more important (&).
	Prioritized = pref.Prioritized
	// PrioritizedAll folds & over two or more preferences.
	PrioritizedAll = pref.PrioritizedAll
	// Rank accumulates Scorer preferences numerically: rank(F).
	Rank = pref.Rank
	// WeightedSum builds the combining function F = Σ wi·xi.
	WeightedSum = pref.WeightedSum
	// Dual reverses a preference (Pδ).
	Dual = pref.Dual
	// AntiChain is the empty order A↔ over attribute names.
	AntiChain = pref.AntiChain
	// AntiChainSet is the empty order S↔ over an explicit value set.
	AntiChainSet = pref.AntiChainSet
	// Intersection aggregates by conjunction (♦).
	Intersection = pref.Intersection
	// DisjointUnion aggregates disjoint preferences by disjunction (+).
	DisjointUnion = pref.DisjointUnion
	// LinearSum concatenates orders over disjoint domains (⊕).
	LinearSum = pref.LinearSum
	// GroupByPref builds A↔ & P, the grouped preference of Definition 16.
	GroupByPref = pref.GroupBy
)

// Evaluation algorithms.
const (
	// Auto picks an algorithm from the preference's structure.
	Auto = engine.Auto
	// Naive is the exhaustive O(n²) reference evaluator.
	Naive = engine.Naive
	// BNL is block-nested-loops.
	BNL = engine.BNL
	// SFS is sort-filter-skyline.
	SFS = engine.SFS
	// DNC is divide & conquer for chain-product (skyline) preferences.
	DNC = engine.DNC
	// Decomposition evaluates via the paper's Propositions 8–12.
	Decomposition = engine.Decomposition
)

// BMO evaluates the preference query σ[P](R) under the Best-Matches-Only
// model (Definition 15) with automatic algorithm selection.
func BMO(p Preference, r *Relation) *Relation {
	return engine.BMO(p, r, engine.Auto)
}

// BMOWith is BMO with an explicit algorithm choice.
func BMOWith(p Preference, r *Relation, alg Algorithm) *Relation {
	return engine.BMO(p, r, alg)
}

// GroupBy evaluates σ[P groupby A](R): the preference query within groups
// of equal A-values (Definition 16).
func GroupBy(p Preference, groupAttrs []string, r *Relation) *Relation {
	return engine.GroupBy(p, groupAttrs, r, engine.Auto)
}

// Cascade runs a cascade of preference queries σ[Pn](…σ[P1](R)…), the
// Preference SQL CASCADE semantics.
func Cascade(r *Relation, ps ...Preference) *Relation {
	return engine.Cascade(r, engine.Auto, ps...)
}

// ResultSize computes size(P, R), the number of distinct A-values in the
// BMO result (Definition 18).
func ResultSize(p Preference, r *Relation) int {
	return engine.ResultSize(p, r, engine.Auto)
}

// PerfectMatches filters σ[P](R) down to the tuples that are perfect
// matches of P (Definition 14b), where max(P) is decidable.
func PerfectMatches(p Preference, r *Relation) *Relation {
	return engine.PerfectMatches(p, r, engine.Auto)
}

// TopK returns the k best rows under a Scorer — the ranked (k-best) query
// model of §6.2.
func TopK(p Scorer, r *Relation, k int) []rank.Result {
	return rank.TopK(p, r, k)
}

// BetterThanGraph builds the better-than graph (Hasse diagram) of P over
// the rows of R, for visualization per Definition 2.
func BetterThanGraph(p Preference, r *Relation) *Graph {
	return pref.NewGraph(p, r.Tuples())
}

// Level reports the discrete quality level of t's value under a
// non-numerical base preference (§6.1 LEVEL).
func Level(p Preference, t Tuple) (int, bool) { return quality.Level(p, t) }

// Distance reports the continuous quality distance of t's value under a
// numerical base preference (§6.1 DISTANCE).
func Distance(p Preference, t Tuple) (float64, bool) { return quality.Distance(p, t) }
