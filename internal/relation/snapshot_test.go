package relation

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pref"
)

func snapSchema() *Schema {
	return MustSchema(
		Column{Name: "oid", Type: Int},
		Column{Name: "price", Type: Int},
		Column{Name: "color", Type: String},
	)
}

func snapRow(i int) Row {
	return Row{int64(i), int64(1000 + i*7%997), []string{"red", "blue", "green"}[i%3]}
}

func buildSnapRelation(t *testing.T, n int) *Relation {
	t.Helper()
	r := New("snap", snapSchema())
	for i := 0; i < n; i++ {
		if err := r.Insert(snapRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSnapshotPinsGeneration(t *testing.T) {
	r := buildSnapRelation(t, 10)
	v := r.Version()
	snap := r.Snapshot()
	if snap.Len() != 10 || snap.Version() != v {
		t.Fatalf("snapshot: len=%d version=%d, want 10, %d", snap.Len(), snap.Version(), v)
	}
	for i := 0; i < 5; i++ {
		if err := r.Insert(snapRow(10 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 15 || r.Version() != v+5 {
		t.Fatalf("head: len=%d version=%d", r.Len(), r.Version())
	}
	if snap.Len() != 10 || snap.Version() != v {
		t.Fatalf("snapshot moved: len=%d version=%d", snap.Len(), snap.Version())
	}
	for i := 0; i < snap.Len(); i++ {
		if !pref.EqualValues(snap.Row(i)[0], int64(i)) {
			t.Fatalf("snapshot row %d: %v", i, snap.Row(i))
		}
	}
}

func TestSnapshotMemoized(t *testing.T) {
	r := buildSnapRelation(t, 4)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if s1 != s2 {
		t.Fatal("same-version snapshots have distinct identity (breaks bound-form cache sharing)")
	}
	if s1.Snapshot() != s1 {
		t.Fatal("snapshot of a snapshot is not itself")
	}
	if err := r.Insert(snapRow(4)); err != nil {
		t.Fatal(err)
	}
	s3 := r.Snapshot()
	if s3 == s1 {
		t.Fatal("post-insert snapshot shares identity with the stale pin")
	}
	if sv, ok := r.PeekSnapshot(); !ok || sv != s3 {
		t.Fatalf("PeekSnapshot: %v %v", sv, ok)
	}
}

func TestSnapshotIsReadOnly(t *testing.T) {
	r := buildSnapRelation(t, 3)
	snap := r.Snapshot()
	if err := snap.Insert(snapRow(3)); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen insert: %v, want ErrFrozen", err)
	}
	if !snap.Frozen() || r.Frozen() {
		t.Fatal("frozen bits wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SortBy on a frozen view did not panic")
		}
	}()
	snap.SortBy(func(a, b pref.Tuple) bool { return false })
}

func TestSnapshotColumnsStayOnEpoch(t *testing.T) {
	r := buildSnapRelation(t, 8)
	snap := r.Snapshot()
	vals, onScale, ok := snap.FloatColumn("price")
	if !ok || len(vals) != 8 || len(onScale) != 8 {
		t.Fatalf("snapshot float column: ok=%v len=%d", ok, len(vals))
	}
	codes, ok := snap.EqColumn("color")
	if !ok || len(codes) != 8 {
		t.Fatalf("snapshot eq column: ok=%v len=%d", ok, len(codes))
	}
	for i := 0; i < 4; i++ {
		if err := r.Insert(snapRow(8 + i)); err != nil {
			t.Fatal(err)
		}
	}
	// The pinned arrays neither grow nor get rebuilt: same data, same
	// length, agreeing with the pinned rows.
	vals2, _, _ := snap.FloatColumn("price")
	if len(vals2) != 8 {
		t.Fatalf("pinned column grew to %d", len(vals2))
	}
	for i := range vals2 {
		if want, _ := pref.Numeric(snap.Row(i)[1]); vals2[i] != want {
			t.Fatalf("pinned column value %d: %v != %v", i, vals2[i], want)
		}
	}
	headVals, _, _ := r.FloatColumn("price")
	if len(headVals) != 12 {
		t.Fatalf("head column: %d values, want 12", len(headVals))
	}
}

// TestSnapshotSurvivesEviction is the deferred-reclamation regression
// test: dropping/replacing a catalog table sweeps its cached bound
// forms (engine.EvictRelation), but a pinned snapshot must keep its
// epoch's rows and column arrays intact until the last reader retires —
// eviction is a cache release, never a reclamation.
func TestSnapshotSurvivesEviction(t *testing.T) {
	r := buildSnapRelation(t, 16)
	snap := r.Snapshot()
	valsBefore, _, _ := snap.FloatColumn("price")
	want := make([]float64, len(valsBefore))
	copy(want, valsBefore)

	// Simulate Catalog.Replace racing the pinned reader: the head moves
	// on (several generations) while something evicts aggressively.
	for i := 0; i < 6; i++ {
		if err := r.Insert(snapRow(16 + i)); err != nil {
			t.Fatal(err)
		}
	}

	if snap.Len() != 16 {
		t.Fatalf("pinned snapshot len %d", snap.Len())
	}
	valsAfter, onScale, ok := snap.FloatColumn("price")
	if !ok || len(valsAfter) != 16 {
		t.Fatalf("pinned column after eviction: ok=%v len=%d", ok, len(valsAfter))
	}
	for i := range want {
		if valsAfter[i] != want[i] || !onScale[i] {
			t.Fatalf("reclaimed under a pinned reader: value %d is %v, want %v", i, valsAfter[i], want[i])
		}
	}
	for i := 0; i < 16; i++ {
		if !pref.EqualValues(snap.Row(i)[0], int64(i)) {
			t.Fatalf("pinned row %d torn: %v", i, snap.Row(i))
		}
	}
}

// TestSnapshotTortureFlat races one writer against many snapshot
// readers under -race: every pinned view must be exactly the first
// Len() rows of the deterministic insert history — never torn, never
// reordered, columns agreeing with rows.
func TestSnapshotTortureFlat(t *testing.T) {
	const total = 400
	const readers = 8
	r := buildSnapRelation(t, 50)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 50; i < total; i++ {
			if err := r.Insert(snapRow(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for k := 0; k < readers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(k)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				n := snap.Len()
				if n < 50 || n > total {
					t.Errorf("snapshot len %d outside [50, %d]", n, total)
					return
				}
				// Spot-check rows against the deterministic history.
				for j := 0; j < 10; j++ {
					i := rng.Intn(n)
					want := snapRow(i)
					got := snap.Row(i)
					for c := range want {
						if !pref.EqualValues(got[c], want[c]) {
							t.Errorf("snapshot len %d row %d: %v, want %v", n, i, got, want)
							return
						}
					}
				}
				// Columns must agree with the pinned rows in length and value.
				vals, _, ok := snap.FloatColumn("price")
				if !ok || len(vals) != n {
					t.Errorf("snapshot len %d: column len %d", n, len(vals))
					return
				}
				i := rng.Intn(n)
				if want, _ := pref.Numeric(snap.Row(i)[1]); vals[i] != want {
					t.Errorf("snapshot column/row disagree at %d: %v != %v", i, vals[i], want)
					return
				}
			}
		}(k)
	}
	wg.Wait()
}

// TestSnapshotTortureSharded is the sharded cut-consistency torture:
// with a single writer, every snapshot must be a prefix cut of the
// insert history — per shard, exactly the routed prefix rows in order.
func TestSnapshotTortureSharded(t *testing.T) {
	const total = 300
	const readers = 6
	const nShards = 3
	part := ByHash("oid")
	s, err := NewSharded("snap", snapSchema(), nShards, part)
	if err != nil {
		t.Fatal(err)
	}
	history := make([]Row, total)
	for i := range history {
		history[i] = snapRow(i)
	}
	// routedPrefix[n] would be O(total²) to precompute per length; the
	// readers reconstruct lazily from the shared history instead.
	for i := 0; i < 40; i++ {
		if err := s.Insert(history[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 40; i < total; i++ {
			if err := s.Insert(history[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for k := 0; k < readers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				n := snap.Len()
				if n < 40 || n > total {
					t.Errorf("sharded snapshot len %d outside [40, %d]", n, total)
					return
				}
				// Rebuild the expected cut: route the first n history rows.
				want := make([][]Row, nShards)
				for i := 0; i < n; i++ {
					sh := part.ShardOf(history[i], snapSchema(), nShards)
					want[sh] = append(want[sh], history[i])
				}
				for sh := 0; sh < nShards; sh++ {
					got := snap.Shard(sh)
					if got.Len() != len(want[sh]) {
						t.Errorf("cut of %d rows: shard %d has %d, want %d (non-prefix cut)", n, sh, got.Len(), len(want[sh]))
						return
					}
					for i := 0; i < got.Len(); i++ {
						for c := range want[sh][i] {
							if !pref.EqualValues(got.Row(i)[c], want[sh][i][c]) {
								t.Errorf("cut of %d rows: shard %d row %d torn", n, sh, i)
								return
							}
						}
					}
				}
			}
		}(k)
	}
	wg.Wait()
}

func TestShardedSnapshotMemoizedAndFrozen(t *testing.T) {
	s, err := NewSharded("snap", snapSchema(), 2, ByHash("oid"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Insert(snapRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	s1, s2 := s.Snapshot(), s.Snapshot()
	if s1 != s2 {
		t.Fatal("same-cut sharded snapshots have distinct identity")
	}
	if s1.Snapshot() != s1 {
		t.Fatal("snapshot of a sharded snapshot is not itself")
	}
	if err := s1.Insert(snapRow(6)); err == nil {
		t.Fatal("insert into a frozen sharded view succeeded")
	}
	if _, err := s1.Reshard(4, ByHash("oid")); err == nil {
		t.Fatal("reshard of a frozen sharded view succeeded")
	}
	if err := s.Insert(snapRow(6)); err != nil {
		t.Fatal(err)
	}
	if s3 := s.Snapshot(); s3 == s1 {
		t.Fatal("post-insert sharded snapshot shares identity with the stale pin")
	}
	if s1.Len() != 6 {
		t.Fatalf("pinned sharded len %d, want 6", s1.Len())
	}
}

func TestSnapshotVersionsAcrossSortBy(t *testing.T) {
	r := buildSnapRelation(t, 5)
	snap := r.Snapshot()
	r.SortBy(func(a, b pref.Tuple) bool {
		av, _ := a.Get("price")
		bv, _ := b.Get("price")
		x, _ := pref.Numeric(av)
		y, _ := pref.Numeric(bv)
		return x < y
	})
	// The sort published a successor; the pin keeps insertion order.
	for i := 0; i < snap.Len(); i++ {
		if !pref.EqualValues(snap.Row(i)[0], int64(i)) {
			t.Fatalf("pinned row %d reordered by SortBy: %v", i, snap.Row(i))
		}
	}
	if r.Version() == snap.Version() {
		t.Fatal("SortBy did not bump the version")
	}
}

func TestGroupKeysOnSnapshot(t *testing.T) {
	r := buildSnapRelation(t, 9)
	snap := r.Snapshot()
	keys := snap.GroupKeys([]string{"color"})
	if len(keys) != 9 {
		t.Fatalf("group keys: %d, want 9", len(keys))
	}
	if err := r.Insert(snapRow(9)); err != nil {
		t.Fatal(err)
	}
	if len(snap.GroupKeys([]string{"color"})) != 9 {
		t.Fatal("pinned group keys grew")
	}
}

func TestFromColumnsStillColumnar(t *testing.T) {
	r, err := FromColumns("fc", snapSchema(),
		[]pref.Value{int64(1), int64(2)},
		[]pref.Value{int64(10), int64(20)},
		[]pref.Value{"red", "blue"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	vals, _, ok := r.FloatColumn("price")
	if !ok || fmt.Sprint(vals) != "[10 20]" {
		t.Fatalf("FromColumns float column: %v %v", vals, ok)
	}
}
