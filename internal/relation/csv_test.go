package relation

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pref"
)

const carsCSV = `id,color,price,sold,since
1,red,9800.5,true,2001-11-23
2,blue,15000,false,2000-01-02
3,gray,,true,1999-06-30
`

func TestReadCSVTypeInference(t *testing.T) {
	r, err := ReadCSV("car", strings.NewReader(carsCSV))
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := map[string]Type{"id": Int, "color": String, "price": Float, "sold": Bool, "since": Time}
	for name, want := range wantTypes {
		i, ok := r.Schema().Index(name)
		if !ok {
			t.Fatalf("missing column %s", name)
		}
		if got := r.Schema().Col(i).Type; got != want {
			t.Errorf("column %s inferred as %s, want %s", name, got, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("rows = %d", r.Len())
	}
	if v, _ := r.Tuple(0).Get("price"); !pref.EqualValues(v, 9800.5) {
		t.Errorf("price[0] = %v", v)
	}
	if v, _ := r.Tuple(2).Get("price"); v != nil {
		t.Errorf("empty cell must be NULL, got %v", v)
	}
	if v, _ := r.Tuple(0).Get("since"); !pref.EqualValues(v, time.Date(2001, 11, 23, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("since[0] = %v", v)
	}
}

func TestReadCSVIntBeatsFloat(t *testing.T) {
	r, err := ReadCSV("x", strings.NewReader("n\n1\n2\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Col(0).Type != Int {
		t.Errorf("all-integer column inferred as %s", r.Schema().Col(0).Type)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1")); err == nil {
		t.Error("ragged CSV must fail (encoding/csv catches it)")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r, err := ReadCSV("car", strings.NewReader(carsCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSV("car", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("round trip changed row count: %d vs %d", r2.Len(), r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		for _, name := range r.Schema().Names() {
			a, _ := r.Tuple(i).Get(name)
			b, _ := r2.Tuple(i).Get(name)
			if !pref.EqualValues(a, b) {
				t.Errorf("row %d column %s: %v vs %v", i, name, a, b)
			}
		}
	}
}

func TestLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.csv")
	if err := os.WriteFile(path, []byte(carsCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "fleet" {
		t.Errorf("relation name = %q, want fleet", r.Name())
	}
	if _, err := LoadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestReadCSVEmptyColumnIsString(t *testing.T) {
	r, err := ReadCSV("x", strings.NewReader("a,b\n1,\n2,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := r.Schema().Index("b"); r.Schema().Col(i).Type != String {
		t.Error("all-empty column defaults to STRING")
	}
}
