package relation

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/pref"
)

// Sharded storage: a relation partitioned horizontally into N shards, each
// a normal *Relation with its own mutation Version, columnar arrays and
// equality-code caches. The BMO model is algebraically partitionable —
// max(P over A ∪ B) = max(P over max(P, A) ∪ max(P, B)) for every strict
// partial order — so every preference query evaluates shard-local first
// and merges candidate maxima, and the compile caches (keyed per shard
// relation and version) amortize independently per shard. Rows route to
// shards by a Partitioner (hash or range over one attribute); global row
// ids address rows stably across the whole table.

// Table is the catalog-facing view shared by flat and sharded relations:
// psql.Catalog stores either, and query execution dispatches on the
// concrete type.
type Table interface {
	// Name returns the table name.
	Name() string
	// Schema returns the table schema.
	Schema() *Schema
	// Len returns the total row count.
	Len() int
}

// Compile-time checks that both storage layouts satisfy the catalog view.
var (
	_ Table = (*Relation)(nil)
	_ Table = (*Sharded)(nil)
)

// gidShardShift splits a global row id into (shard, local): the shard
// index lives above bit 40, the shard-local row position below. A shard
// can hold 2^40 rows and a table 2^23 shards — both far beyond the
// in-memory store's reach — and the id of a row never changes as long as
// the table is not resharded (shards are append-only).
const gidShardShift = 40

// maxShards bounds the shard count so global ids stay positive int64s.
const maxShards = 1 << 23

// GlobalID packs a (shard, shard-local row) address into one stable int.
func GlobalID(shard, local int) int {
	return shard<<gidShardShift | local
}

// SplitGlobalID unpacks a global row id into its shard index and
// shard-local row position.
func SplitGlobalID(gid int) (shard, local int) {
	return gid >> gidShardShift, gid & (1<<gidShardShift - 1)
}

// Partitioner routes rows to shards. Implementations must be
// deterministic pure functions of the row values, so a row routes to the
// same shard no matter when it is inserted.
type Partitioner interface {
	// ShardOf returns the target shard in [0, n) for a row under the
	// given schema.
	ShardOf(row Row, schema *Schema, n int) int
	// String renders the partitioning spec (e.g. "hash(color)") for
	// query explanation.
	String() string
}

// hashPart partitions by a hash of one attribute's canonical value key.
type hashPart struct{ attr string }

// ByHash returns a Partitioner distributing rows by a hash of the named
// attribute (pref.ValueKey canonical encoding, so numeric cross-type
// equality hashes consistently). NULLs all hash to one shard.
func ByHash(attr string) Partitioner { return hashPart{attr: attr} }

// ShardOf implements Partitioner. The FNV-1a loop is inlined so routing
// a row — the hot path of Insert and ShardRelation — allocates nothing
// beyond the canonical key string.
func (p hashPart) ShardOf(row Row, schema *Schema, n int) int {
	if n <= 1 {
		return 0
	}
	var key string
	if i, ok := schema.Index(p.attr); ok && row[i] != nil {
		key = pref.ValueKey(row[i])
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// String implements Partitioner.
func (p hashPart) String() string { return fmt.Sprintf("hash(%s)", p.attr) }

// rangePart partitions a linearly ordered attribute by upper bounds.
type rangePart struct {
	attr   string
	bounds []float64
}

// ByRange returns a Partitioner distributing rows by ranges of the named
// numeric (or time) attribute: shard i holds values below bounds[i], the
// last shard everything else, so the shard count must be len(bounds)+1.
// NULLs and values off the linear scale go to shard 0.
func ByRange(attr string, bounds ...float64) Partitioner {
	return rangePart{attr: attr, bounds: append([]float64(nil), bounds...)}
}

// ShardOf implements Partitioner.
func (p rangePart) ShardOf(row Row, schema *Schema, n int) int {
	if n <= 1 {
		return 0
	}
	i, ok := schema.Index(p.attr)
	if !ok || row[i] == nil {
		return 0
	}
	v, ok := pref.Numeric(row[i])
	if !ok {
		if t, isTime := row[i].(time.Time); isTime {
			v = float64(t.Unix())
		} else {
			return 0
		}
	}
	if math.IsNaN(v) {
		return 0
	}
	for s, b := range p.bounds {
		if s >= n-1 {
			break
		}
		if v < b {
			return s
		}
	}
	return min(len(p.bounds), n-1)
}

// String implements Partitioner.
func (p rangePart) String() string { return fmt.Sprintf("range(%s)", p.attr) }

// shardCountChecker is implemented by partitioners that can sanity-check
// a shard count; NewSharded and Reshard consult it so a misconfigured
// partitioner fails loudly instead of silently skewing the table.
type shardCountChecker interface {
	checkShards(n int) error
}

// checkShards rejects shard counts the bound list cannot address — in
// particular the zero-bound case RangeBounds produces for non-numeric
// attributes, which would route every row to shard 0.
func (p rangePart) checkShards(n int) error {
	if len(p.bounds)+1 != n {
		return fmt.Errorf("relation: range partitioner on %s has %d bounds for %d shards (want %d)",
			p.attr, len(p.bounds), n, n-1)
	}
	return nil
}

// RangeBounds computes n-1 equi-depth upper bounds of the named attribute
// over an existing relation, for ByRange sharding into n shards of
// roughly equal size. Rows without an on-scale value are ignored.
func RangeBounds(r *Relation, attr string, n int) []float64 {
	vals, onScale, ok := r.FloatColumn(attr)
	if !ok || n < 2 {
		return nil
	}
	kept := make([]float64, 0, len(vals))
	for i, v := range vals {
		if onScale[i] && !math.IsNaN(v) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	slices.Sort(kept)
	bounds := make([]float64, n-1)
	for k := 1; k < n; k++ {
		bounds[k-1] = kept[k*len(kept)/n]
	}
	return bounds
}

// Sharded is a horizontally partitioned table: N shards, each a normal
// *Relation sharing one schema, with rows routed by the Partitioner.
// Shards are append-only (no deletes exist in the store), so a global
// row id — GlobalID(shard, local) — addresses its row stably. Reads of
// distinct shards never contend: each shard owns its rows, columnar
// arrays and caches outright.
type Sharded struct {
	name   string
	schema *Schema
	part   Partitioner
	shards []*Relation
}

// NewSharded creates an empty sharded table with nShards shards.
func NewSharded(name string, schema *Schema, nShards int, part Partitioner) (*Sharded, error) {
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("relation %s: shard count %d outside [1, %d]", name, nShards, maxShards)
	}
	if part == nil {
		return nil, fmt.Errorf("relation %s: nil partitioner", name)
	}
	if c, ok := part.(shardCountChecker); ok {
		if err := c.checkShards(nShards); err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
	}
	s := &Sharded{name: name, schema: schema, part: part, shards: make([]*Relation, nShards)}
	for i := range s.shards {
		s.shards[i] = New(fmt.Sprintf("%s#%d", name, i), schema)
	}
	return s, nil
}

// ShardRelation distributes an existing relation's rows into a new
// sharded table with nShards shards under the given partitioner. The
// source relation is left untouched; row value slices are shared (rows
// are immutable by convention throughout the store).
func ShardRelation(r *Relation, nShards int, part Partitioner) (*Sharded, error) {
	s, err := NewSharded(r.Name(), r.Schema(), nShards, part)
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows() {
		sh := s.shards[s.ShardOf(row)]
		sh.rows = append(sh.rows, row)
	}
	for _, sh := range s.shards {
		sh.invalidateColumns()
	}
	return s, nil
}

// Name returns the table name.
func (s *Sharded) Name() string { return s.name }

// Schema returns the shared schema.
func (s *Sharded) Schema() *Schema { return s.schema }

// Len returns the total row count across every shard.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i; callers must not mutate it directly (route rows
// through Insert so the partitioning invariant holds).
func (s *Sharded) Shard(i int) *Relation { return s.shards[i] }

// Shards returns the shard list; callers must not modify the slice.
func (s *Sharded) Shards() []*Relation { return s.shards }

// Part returns the partitioner.
func (s *Sharded) Part() Partitioner { return s.part }

// ShardOf returns the shard a row routes to under the partitioner.
func (s *Sharded) ShardOf(row Row) int {
	return s.part.ShardOf(row, s.schema, len(s.shards))
}

// Insert routes the row to its shard after the usual schema type check.
// Concurrent Inserts into DISTINCT shards are independent (each shard
// owns its storage); inserts into one shard must be serialized by the
// caller, like Relation.Insert itself.
func (s *Sharded) Insert(row Row) error {
	if len(row) != s.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", s.name, len(row), s.schema.Len())
	}
	return s.shards[s.ShardOf(row)].Insert(row)
}

// MustInsert is Insert that panics on error; for test fixtures.
func (s *Sharded) MustInsert(rows ...Row) *Sharded {
	for _, row := range rows {
		if err := s.Insert(row); err != nil {
			panic(err)
		}
	}
	return s
}

// Row returns the row at a global id; callers must not modify it.
func (s *Sharded) Row(gid int) Row {
	shard, local := SplitGlobalID(gid)
	return s.shards[shard].Row(local)
}

// Tuple returns the pref.Tuple view of the row at a global id.
func (s *Sharded) Tuple(gid int) pref.Tuple {
	shard, local := SplitGlobalID(gid)
	return s.shards[shard].Tuple(local)
}

// Pick materializes the rows at the given global ids as a new flat
// (derived) relation, in id order.
func (s *Sharded) Pick(gids []int) *Relation {
	out := New(s.name, s.schema)
	out.derived = true
	out.rows = make([]Row, 0, len(gids))
	for _, gid := range gids {
		out.rows = append(out.rows, s.Row(gid))
	}
	return out
}

// Flatten materializes the union of every shard as a new flat (derived)
// relation in shard-major order. The planner's flat evaluation path and
// agreement tests use it; per-query flattening is exactly the cost the
// sharded evaluation paths avoid.
func (s *Sharded) Flatten() *Relation {
	out := New(s.name, s.schema)
	out.derived = true
	out.rows = make([]Row, 0, s.Len())
	for _, sh := range s.shards {
		out.rows = append(out.rows, sh.rows...)
	}
	return out
}

// Reshard redistributes every row into nShards fresh shards under a new
// partitioner and returns the displaced shard relations, so callers can
// evict their cached bound forms (see engine.EvictSharded); the sharded
// table keeps its identity. Global row ids are NOT stable across a
// Reshard — it is the one operation that re-addresses rows.
func (s *Sharded) Reshard(nShards int, part Partitioner) ([]*Relation, error) {
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("relation %s: shard count %d outside [1, %d]", s.name, nShards, maxShards)
	}
	if part == nil {
		part = s.part
	}
	if c, ok := part.(shardCountChecker); ok {
		if err := c.checkShards(nShards); err != nil {
			return nil, fmt.Errorf("relation %s: %w", s.name, err)
		}
	}
	next := make([]*Relation, nShards)
	for i := range next {
		next[i] = New(fmt.Sprintf("%s#%d", s.name, i), s.schema)
	}
	for _, sh := range s.shards {
		for _, row := range sh.rows {
			t := part.ShardOf(row, s.schema, nShards)
			next[t].rows = append(next[t].rows, row)
		}
	}
	for _, sh := range next {
		sh.invalidateColumns()
	}
	old := s.shards
	s.shards, s.part = next, part
	return old, nil
}

// String renders the table as an aligned text table (shard-major order).
func (s *Sharded) String() string {
	return s.Flatten().String()
}

// FanShards runs f(0..n-1) concurrently, at most NumCPU at a time — the
// bounded fan-out every shard-parallel evaluation layer shares (engine
// BMO/groupby fan-out, rank's per-shard scans). Work items must be
// independent: f runs on distinct goroutines with no ordering beyond the
// final wait, and below two workers the sweep degrades to a plain loop.
func FanShards(n int, f func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
