package relation

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pref"
)

// Sharded storage: a relation partitioned horizontally into N shards, each
// a normal *Relation with its own mutation Version, columnar arrays and
// equality-code caches. The BMO model is algebraically partitionable —
// max(P over A ∪ B) = max(P over max(P, A) ∪ max(P, B)) for every strict
// partial order — so every preference query evaluates shard-local first
// and merges candidate maxima, and the compile caches (keyed per shard
// relation and version) amortize independently per shard. Rows route to
// shards by a Partitioner (hash or range over one attribute); global row
// ids address rows stably across the whole table.

// Table is the catalog-facing view shared by flat and sharded relations:
// psql.Catalog stores either, and query execution dispatches on the
// concrete type.
type Table interface {
	// Name returns the table name.
	Name() string
	// Schema returns the table schema.
	Schema() *Schema
	// Len returns the total row count.
	Len() int
}

// Compile-time checks that both storage layouts satisfy the catalog view.
var (
	_ Table = (*Relation)(nil)
	_ Table = (*Sharded)(nil)
)

// gidShardShift splits a global row id into (shard, local): the shard
// index lives above bit 40, the shard-local row position below. A shard
// can hold 2^40 rows and a table 2^23 shards — both far beyond the
// in-memory store's reach — and the id of a row never changes as long as
// the table is not resharded (shards are append-only).
const gidShardShift = 40

// maxShards bounds the shard count so global ids stay positive int64s.
const maxShards = 1 << 23

// GlobalID packs a (shard, shard-local row) address into one stable int.
func GlobalID(shard, local int) int {
	return shard<<gidShardShift | local
}

// SplitGlobalID unpacks a global row id into its shard index and
// shard-local row position.
func SplitGlobalID(gid int) (shard, local int) {
	return gid >> gidShardShift, gid & (1<<gidShardShift - 1)
}

// Partitioner routes rows to shards. Implementations must be
// deterministic pure functions of the row values, so a row routes to the
// same shard no matter when it is inserted.
type Partitioner interface {
	// ShardOf returns the target shard in [0, n) for a row under the
	// given schema.
	ShardOf(row Row, schema *Schema, n int) int
	// String renders the partitioning spec (e.g. "hash(color)") for
	// query explanation.
	String() string
}

// hashPart partitions by a hash of one attribute's canonical value key.
type hashPart struct{ attr string }

// ByHash returns a Partitioner distributing rows by a hash of the named
// attribute (pref.ValueKey canonical encoding, so numeric cross-type
// equality hashes consistently). NULLs all hash to one shard.
func ByHash(attr string) Partitioner { return hashPart{attr: attr} }

// ShardOf implements Partitioner. The FNV-1a loop is inlined so routing
// a row — the hot path of Insert and ShardRelation — allocates nothing
// beyond the canonical key string.
func (p hashPart) ShardOf(row Row, schema *Schema, n int) int {
	if n <= 1 {
		return 0
	}
	var key string
	if i, ok := schema.Index(p.attr); ok && row[i] != nil {
		key = pref.ValueKey(row[i])
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// String implements Partitioner.
func (p hashPart) String() string { return fmt.Sprintf("hash(%s)", p.attr) }

// rangePart partitions a linearly ordered attribute by upper bounds.
type rangePart struct {
	attr   string
	bounds []float64
}

// ByRange returns a Partitioner distributing rows by ranges of the named
// numeric (or time) attribute: shard i holds values below bounds[i], the
// last shard everything else, so the shard count must be len(bounds)+1.
// NULLs and values off the linear scale go to shard 0.
func ByRange(attr string, bounds ...float64) Partitioner {
	return rangePart{attr: attr, bounds: append([]float64(nil), bounds...)}
}

// ShardOf implements Partitioner.
func (p rangePart) ShardOf(row Row, schema *Schema, n int) int {
	if n <= 1 {
		return 0
	}
	i, ok := schema.Index(p.attr)
	if !ok || row[i] == nil {
		return 0
	}
	v, ok := pref.Numeric(row[i])
	if !ok {
		if t, isTime := row[i].(time.Time); isTime {
			v = float64(t.Unix())
		} else {
			return 0
		}
	}
	if math.IsNaN(v) {
		return 0
	}
	for s, b := range p.bounds {
		if s >= n-1 {
			break
		}
		if v < b {
			return s
		}
	}
	return min(len(p.bounds), n-1)
}

// String implements Partitioner.
func (p rangePart) String() string { return fmt.Sprintf("range(%s)", p.attr) }

// shardCountChecker is implemented by partitioners that can sanity-check
// a shard count; NewSharded and Reshard consult it so a misconfigured
// partitioner fails loudly instead of silently skewing the table.
type shardCountChecker interface {
	checkShards(n int) error
}

// checkShards rejects shard counts the bound list cannot address — in
// particular the zero-bound case RangeBounds produces for non-numeric
// attributes, which would route every row to shard 0.
func (p rangePart) checkShards(n int) error {
	if len(p.bounds)+1 != n {
		return fmt.Errorf("relation: range partitioner on %s has %d bounds for %d shards (want %d)",
			p.attr, len(p.bounds), n, n-1)
	}
	return nil
}

// RangeBounds computes n-1 equi-depth upper bounds of the named attribute
// over an existing relation, for ByRange sharding into n shards of
// roughly equal size. Rows without an on-scale value are ignored.
func RangeBounds(r *Relation, attr string, n int) []float64 {
	vals, onScale, ok := r.FloatColumn(attr)
	if !ok || n < 2 {
		return nil
	}
	kept := make([]float64, 0, len(vals))
	for i, v := range vals {
		if onScale[i] && !math.IsNaN(v) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	slices.Sort(kept)
	bounds := make([]float64, n-1)
	for k := 1; k < n; k++ {
		bounds[k-1] = kept[k*len(kept)/n]
	}
	return bounds
}

// Sharded is a horizontally partitioned table: N shards, each a normal
// *Relation sharing one schema, with rows routed by the Partitioner.
// Shards are append-only (no deletes exist in the store), so a global
// row id — GlobalID(shard, local) — addresses its row stably. Reads of
// distinct shards never contend: each shard owns its rows, columnar
// arrays and caches outright. The shard list and partitioner are
// published through an atomic pointer (swapped only by Reshard), and a
// table-level reader/writer lock coordinates Inserts against Snapshot so
// a pinned snapshot is a consistent cut across every shard.
type Sharded struct {
	name   string
	schema *Schema
	frozen bool

	// mu: Insert holds it shared (concurrent inserts still fan out —
	// per-shard writer locks do the serialization), Snapshot and Reshard
	// hold it exclusively for the brief pin/swap.
	mu    sync.RWMutex
	state atomic.Pointer[shardState]

	// mutations counts row inserts and reshard swaps; the memoized
	// snapshot is valid while it is unchanged.
	mutations atomic.Uint64
	snapAt    uint64
	snap      *Sharded
}

// shardState is the swappable part of a sharded table: the shard list
// and the partitioner that routes into it.
type shardState struct {
	part   Partitioner
	shards []*Relation
}

// NewSharded creates an empty sharded table with nShards shards.
func NewSharded(name string, schema *Schema, nShards int, part Partitioner) (*Sharded, error) {
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("relation %s: shard count %d outside [1, %d]", name, nShards, maxShards)
	}
	if part == nil {
		return nil, fmt.Errorf("relation %s: nil partitioner", name)
	}
	if c, ok := part.(shardCountChecker); ok {
		if err := c.checkShards(nShards); err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
	}
	shards := make([]*Relation, nShards)
	for i := range shards {
		shards[i] = New(fmt.Sprintf("%s#%d", name, i), schema)
	}
	s := &Sharded{name: name, schema: schema}
	s.state.Store(&shardState{part: part, shards: shards})
	return s, nil
}

// ShardRelation distributes an existing relation's rows into a new
// sharded table with nShards shards under the given partitioner. The
// source relation is left untouched; row value slices are shared (rows
// are immutable by convention throughout the store).
func ShardRelation(r *Relation, nShards int, part Partitioner) (*Sharded, error) {
	s, err := NewSharded(r.Name(), r.Schema(), nShards, part)
	if err != nil {
		return nil, err
	}
	st := s.state.Load()
	buckets := make([][]Row, nShards)
	for _, row := range r.Rows() {
		t := st.part.ShardOf(row, s.schema, nShards)
		buckets[t] = append(buckets[t], row)
	}
	for i, sh := range st.shards {
		sh.setRows(buckets[i])
	}
	return s, nil
}

// Name returns the table name.
func (s *Sharded) Name() string { return s.name }

// Schema returns the shared schema.
func (s *Sharded) Schema() *Schema { return s.schema }

// Frozen reports whether the table is an immutable Snapshot view.
func (s *Sharded) Frozen() bool { return s.frozen }

// Len returns the total row count across every shard.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.state.Load().shards {
		n += sh.Len()
	}
	return n
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.state.Load().shards) }

// Shard returns shard i; callers must not mutate it directly (route rows
// through Insert so the partitioning invariant holds).
func (s *Sharded) Shard(i int) *Relation { return s.state.Load().shards[i] }

// Shards returns the shard list; callers must not modify the slice.
func (s *Sharded) Shards() []*Relation { return s.state.Load().shards }

// Part returns the partitioner.
func (s *Sharded) Part() Partitioner { return s.state.Load().part }

// ShardOf returns the shard a row routes to under the partitioner.
func (s *Sharded) ShardOf(row Row) int {
	st := s.state.Load()
	return st.part.ShardOf(row, s.schema, len(st.shards))
}

// Insert routes the row to its shard after the usual schema type check.
// Concurrent Inserts are safe: inserts into distinct shards proceed in
// parallel (each shard serializes its own writers), and the table-level
// read lock only excludes the brief exclusive sections of Snapshot and
// Reshard, keeping snapshots consistent cuts.
func (s *Sharded) Insert(row Row) error {
	if s.frozen {
		return fmt.Errorf("relation %s: %w", s.name, ErrFrozen)
	}
	if len(row) != s.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", s.name, len(row), s.schema.Len())
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.state.Load()
	err := st.shards[st.part.ShardOf(row, s.schema, len(st.shards))].Insert(row)
	if err == nil {
		s.mutations.Add(1)
	}
	return err
}

// Snapshot pins a consistent cut of the whole table: a frozen *Sharded
// whose shards are the per-shard Snapshot views, taken under the
// table-level exclusive lock so no insert lands between pinning shard 0
// and shard N-1. Single-row Inserts are therefore atomic with respect to
// snapshots — a pinned cut reflects a prefix of the table's insert
// history, never a row without its predecessors. The cut is memoized
// until the next mutation, so concurrent sessions pinning the same epoch
// share shard identities and their cached bound forms. Snapshot of a
// frozen view returns the view itself.
func (s *Sharded) Snapshot() *Sharded {
	if s.frozen {
		return s
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.mutations.Load(); s.snap != nil && s.snapAt == m {
		return s.snap
	} else {
		st := s.state.Load()
		shards := make([]*Relation, len(st.shards))
		for i, sh := range st.shards {
			shards[i] = sh.Snapshot()
		}
		snap := &Sharded{name: s.name, schema: s.schema, frozen: true}
		snap.state.Store(&shardState{part: st.part, shards: shards})
		s.snap, s.snapAt = snap, m
		return snap
	}
}

// PeekSnapshot returns the memoized current-cut Snapshot view, without
// creating one; eviction sweeps use it (see engine.EvictSharded).
func (s *Sharded) PeekSnapshot() (*Sharded, bool) {
	if s.frozen {
		return s, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap != nil && s.snapAt == s.mutations.Load() {
		return s.snap, true
	}
	return nil, false
}

// MustInsert is Insert that panics on error; for test fixtures.
func (s *Sharded) MustInsert(rows ...Row) *Sharded {
	for _, row := range rows {
		if err := s.Insert(row); err != nil {
			panic(err)
		}
	}
	return s
}

// Row returns the row at a global id; callers must not modify it.
func (s *Sharded) Row(gid int) Row {
	shard, local := SplitGlobalID(gid)
	return s.state.Load().shards[shard].Row(local)
}

// Tuple returns the pref.Tuple view of the row at a global id.
func (s *Sharded) Tuple(gid int) pref.Tuple {
	shard, local := SplitGlobalID(gid)
	return s.state.Load().shards[shard].Tuple(local)
}

// Pick materializes the rows at the given global ids as a new flat
// (derived) relation, in id order.
func (s *Sharded) Pick(gids []int) *Relation {
	st := s.state.Load()
	rows := make([]Row, 0, len(gids))
	for _, gid := range gids {
		shard, local := SplitGlobalID(gid)
		rows = append(rows, st.shards[shard].Row(local))
	}
	return newDerived(s.name, s.schema, rows)
}

// Flatten materializes the union of every shard as a new flat (derived)
// relation in shard-major order. The planner's flat evaluation path and
// agreement tests use it; per-query flattening is exactly the cost the
// sharded evaluation paths avoid.
func (s *Sharded) Flatten() *Relation {
	var rows []Row
	for _, sh := range s.state.Load().shards {
		rows = append(rows, sh.Rows()...)
	}
	return newDerived(s.name, s.schema, rows)
}

// Reshard redistributes every row into nShards fresh shards under a new
// partitioner and returns the displaced shard relations; the sharded
// table keeps its identity. Global row ids are NOT stable across a
// Reshard — it is the one operation that re-addresses rows. Pinned
// Snapshots keep addressing the displaced shards. Every registered
// DisplacedHook fires with the displaced shard list before Reshard
// returns, so caches keyed by the old shard identities (bound forms,
// rank score/perm vectors, memoized BMO maxima) are swept eagerly —
// callers no longer need to remember the eviction themselves, though
// the displaced list is still returned for them. Persistent tables
// (opened through a Store) cannot be resharded in place: their shard
// directories are the unit of recovery, so redistribution goes through
// Store.ImportTable into a new table instead.
func (s *Sharded) Reshard(nShards int, part Partitioner) ([]*Relation, error) {
	if s.frozen {
		return nil, fmt.Errorf("relation %s: %w", s.name, ErrFrozen)
	}
	if sh := s.state.Load().shards; len(sh) > 0 && sh[0].persist != nil {
		return nil, fmt.Errorf("relation %s: persistent tables cannot be resharded in place", s.name)
	}
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("relation %s: shard count %d outside [1, %d]", s.name, nShards, maxShards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	if part == nil {
		part = st.part
	}
	if c, ok := part.(shardCountChecker); ok {
		if err := c.checkShards(nShards); err != nil {
			return nil, fmt.Errorf("relation %s: %w", s.name, err)
		}
	}
	next := make([]*Relation, nShards)
	buckets := make([][]Row, nShards)
	for i := range next {
		next[i] = New(fmt.Sprintf("%s#%d", s.name, i), s.schema)
	}
	for _, sh := range st.shards {
		for _, row := range sh.Rows() {
			t := part.ShardOf(row, s.schema, nShards)
			buckets[t] = append(buckets[t], row)
		}
	}
	for i, sh := range next {
		sh.setRows(buckets[i])
	}
	s.state.Store(&shardState{part: part, shards: next})
	s.mutations.Add(1)
	runDisplacedHooks(st.shards)
	return st.shards, nil
}

// String renders the table as an aligned text table (shard-major order).
func (s *Sharded) String() string {
	return s.Flatten().String()
}

// FanShards runs f(0..n-1) concurrently, at most NumCPU at a time — the
// bounded fan-out every shard-parallel evaluation layer shares (engine
// BMO/groupby fan-out, rank's per-shard scans). Work items must be
// independent: f runs on distinct goroutines with no ordering beyond the
// final wait, and below two workers the sweep degrades to a plain loop.
func FanShards(n int, f func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
