// Package store is the disk mechanics under relation's persistent
// catalog: a tagged row codec shared by the write-ahead log and the row
// pages, a CRC-framed WAL with torn-tail recovery, fixed-size columnar
// segment files served zero-copy through mmap (with a portable heap
// fallback), and a small buffer pool (page table, pin/unpin, clock
// eviction, configurable byte capacity) caching decoded row pages.
//
// The package is deliberately below relation in the import graph — it
// knows pref.Value and nothing else — so relation can orchestrate
// catalogs, generations and snapshots on top of it without a cycle.
// Layout on disk is little-endian throughout; the mmap fast path reads
// segment files through unsafe typed views and is only correct on
// little-endian hosts (everything this repo targets — the AVX2 kernel
// is amd64-only anyway). Big-endian ports must set the heap fallback.
package store

// MaxWALRecord bounds one WAL record's payload so a corrupt length
// prefix cannot drive a multi-gigabyte allocation during replay.
const MaxWALRecord = 1 << 26
