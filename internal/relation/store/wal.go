package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Write-ahead log: one file per shard, a flat sequence of CRC-framed
// records. A record is [u32 LE payload length][u32 LE CRC-32 of the
// payload][payload]. Appends go to the tail; recovery replays records
// front to back and stops at the first frame that is short, oversized
// or fails its checksum — everything before that point is the last
// durable prefix, everything after is a torn tail from a crashed
// writer and is truncated away. There is no in-place mutation, so the
// only corruption a crash can produce is exactly that torn tail.

// walHeaderLen is the per-record framing overhead.
const walHeaderLen = 8

// WAL is an append-only record log with torn-tail recovery.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64
	sync   bool
	failed bool
}

// OpenWAL opens (creating if absent) the log at path, replays every
// intact record into the returned payload list, truncates any torn
// tail, and positions the log for appends. With syncEach set, every
// Append fsyncs before returning.
func OpenWAL(path string, syncEach bool) (*WAL, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var recs [][]byte
	off := 0
	for len(data)-off >= walHeaderLen {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxWALRecord || len(data)-off-walHeaderLen < n {
			break // torn or corrupt tail
		}
		payload := data[off+walHeaderLen : off+walHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += walHeaderLen + n
	}
	if int64(off) != int64(len(data)) {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path, size: int64(off), sync: syncEach}, recs, nil
}

// Append writes one record to the tail. The record is durable (modulo
// the fsync policy) when Append returns nil; a failed append poisons
// the log — the file may hold a torn frame, so further appends refuse
// rather than interleave garbage, and recovery discards the tail.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxWALRecord {
		return fmt.Errorf("store: WAL record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return fmt.Errorf("store: WAL %s is poisoned by an earlier failed append", w.path)
	}
	if walFaultActive.Load() != 0 {
		if keep, ok := takeWALFault(w.path); ok {
			// Injected crash: only the first keep bytes of the frame
			// reach the file — the on-disk image a writer killed
			// mid-append leaves behind.
			if keep > int64(len(frame)) {
				keep = int64(len(frame))
			}
			if keep > 0 {
				w.f.Write(frame[:keep])
				w.f.Sync()
			}
			w.failed = true
			return fmt.Errorf("store: WAL %s: injected crash mid-append", w.path)
		}
	}
	n, err := w.f.Write(frame)
	if err != nil {
		w.failed = true
		return err
	}
	w.size += int64(n)
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.failed = true
			return err
		}
	}
	return nil
}

// Size returns the log's current byte length.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Sync flushes the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Sync()
	return w.f.Close()
}

// Path returns the log's file path.
func (w *WAL) Path() string {
	return w.path
}

// WAL fault injection, in the internal/faultinject mold: a registry
// consulted on the append path behind one atomic load, so the no-fault
// fast path costs nothing measurable. Tests install a fault keyed by
// log path; the next Append on that log writes only the configured
// byte prefix of its frame and fails as if the process died mid-write.
var (
	walFaultMu     sync.Mutex
	walFaults      map[string]int64
	walFaultActive atomic.Int32
)

// InstallWALFault arms a one-shot crash on the next Append to the log
// at path: only keepBytes bytes of the appended frame reach the file.
func InstallWALFault(path string, keepBytes int64) {
	walFaultMu.Lock()
	if walFaults == nil {
		walFaults = make(map[string]int64)
	}
	if _, dup := walFaults[path]; !dup {
		walFaultActive.Add(1)
	}
	walFaults[path] = keepBytes
	walFaultMu.Unlock()
}

// ClearWALFaults disarms every installed WAL fault.
func ClearWALFaults() {
	walFaultMu.Lock()
	walFaultActive.Add(-int32(len(walFaults)))
	walFaults = nil
	walFaultMu.Unlock()
}

// takeWALFault consumes the fault armed for path, if any.
func takeWALFault(path string) (int64, bool) {
	walFaultMu.Lock()
	defer walFaultMu.Unlock()
	keep, ok := walFaults[path]
	if ok {
		delete(walFaults, path)
		walFaultActive.Add(-1)
	}
	return keep, ok
}
