package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/pref"
)

// Tagged value codec: one byte of type tag, then a fixed- or
// varint-encoded body. The same framing backs WAL records and row
// pages, so recovery and page decode share one code path. Integers of
// every width widen to int64 on the way back (like the wire protocol);
// unsigned and exotic numeric values round-trip through their float64
// image, which is exactly the equality/scoring semantics the engine
// already applies (pref.Numeric feeds both EqColumn and FloatColumn).
// Times round-trip as UTC UnixNano instants.

// Value type tags.
const (
	tagNull  = 0
	tagStr   = 1
	tagInt   = 2
	tagFloat = 3
	tagBool  = 4
	tagTime  = 5
)

// AppendValue appends the tagged encoding of one pref.Value.
func AppendValue(buf []byte, v pref.Value) ([]byte, error) {
	switch t := v.(type) {
	case nil:
		return append(buf, tagNull), nil
	case string:
		buf = append(buf, tagStr)
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		return append(buf, t...), nil
	case int:
		return appendInt(buf, int64(t)), nil
	case int8:
		return appendInt(buf, int64(t)), nil
	case int16:
		return appendInt(buf, int64(t)), nil
	case int32:
		return appendInt(buf, int64(t)), nil
	case int64:
		return appendInt(buf, t), nil
	case float64:
		return appendFloat(buf, t), nil
	case float32:
		return appendFloat(buf, float64(t)), nil
	case bool:
		b := byte(0)
		if t {
			b = 1
		}
		return append(buf, tagBool, b), nil
	case time.Time:
		buf = append(buf, tagTime)
		return binary.AppendVarint(buf, t.UnixNano()), nil
	}
	// Anything else numeric (uint widths, custom numerics) persists as
	// its float64 image — the value the engine scores and groups by.
	if n, ok := pref.Numeric(v); ok {
		return appendFloat(buf, n), nil
	}
	return nil, fmt.Errorf("store: value %v (%T) is not encodable", v, v)
}

func appendInt(buf []byte, n int64) []byte {
	buf = append(buf, tagInt)
	return binary.AppendVarint(buf, n)
}

func appendFloat(buf []byte, f float64) []byte {
	buf = append(buf, tagFloat)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// ReadValue decodes one tagged value, returning it and the remaining
// bytes.
func ReadValue(buf []byte) (pref.Value, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("store: truncated value (no tag)")
	}
	tag, rest := buf[0], buf[1:]
	switch tag {
	case tagNull:
		return nil, rest, nil
	case tagStr:
		n, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < n {
			return nil, nil, fmt.Errorf("store: truncated string value")
		}
		rest = rest[k:]
		return string(rest[:n]), rest[n:], nil
	case tagInt:
		n, k := binary.Varint(rest)
		if k <= 0 {
			return nil, nil, fmt.Errorf("store: truncated int value")
		}
		return n, rest[k:], nil
	case tagFloat:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("store: truncated float value")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case tagBool:
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("store: truncated bool value")
		}
		return rest[0] != 0, rest[1:], nil
	case tagTime:
		n, k := binary.Varint(rest)
		if k <= 0 {
			return nil, nil, fmt.Errorf("store: truncated time value")
		}
		return time.Unix(0, n).UTC(), rest[k:], nil
	}
	return nil, nil, fmt.Errorf("store: unknown value tag %d", tag)
}

// AppendRow appends the encoding of one row (its values in schema
// order, no arity prefix — the arity is fixed per file and recorded in
// the epoch/catalog metadata).
func AppendRow(buf []byte, row []pref.Value) ([]byte, error) {
	var err error
	for _, v := range row {
		if buf, err = AppendValue(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadRow decodes one row of the given arity, returning it and the
// remaining bytes.
func ReadRow(buf []byte, arity int) ([]pref.Value, []byte, error) {
	row := make([]pref.Value, arity)
	var err error
	for i := range row {
		if row[i], buf, err = ReadValue(buf); err != nil {
			return nil, nil, err
		}
	}
	return row, buf, nil
}
