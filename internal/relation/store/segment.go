package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"repro/internal/pref"
)

// Segment epochs: one immutable on-disk image of a shard's contents.
// An epoch directory holds the authoritative row store (rows.pag —
// fixed-size pages of tag-encoded rows, each page CRC-framed in the
// epoch metadata and decoded on demand through the buffer pool) plus
// derived columnar segment files per column: the float64 scale image
// and its on-scale mask for the linearly ordered columns, and the
// equality-code dictionary image for every column. Column segments are
// mmap'd read-only and served as typed slices with zero copies, so the
// compiled evaluator binds against them exactly as it binds against
// heap arrays — the kernel's page cache takes the role RAM residency
// plays for in-memory relations. Epochs are written whole and then
// published by a shard-level metadata swap; nothing in an epoch
// directory is ever modified in place.

// Epoch file names.
const (
	epochMetaFile = "epoch.json"
	epochRowsFile = "rows.pag"
)

// FloatSeg is the persisted image of one float column: the scale
// values plus the on-scale mask, as built by the relation layer.
type FloatSeg struct {
	Vals []float64
	Mask []bool
}

// epochPage locates one row page inside rows.pag.
type epochPage struct {
	Rows int    `json:"rows"`
	Off  int64  `json:"off"`
	Len  int32  `json:"len"`
	CRC  uint32 `json:"crc"`
}

// epochMeta is the epoch.json document.
type epochMeta struct {
	N     int         `json:"n"`
	Arity int         `json:"arity"`
	Pages []epochPage `json:"pages"`
	// Floats and Eqs list the column indices with persisted segments.
	Floats []int `json:"floats"`
	Eqs    []int `json:"eqs"`
}

// WriteEpoch materializes one immutable epoch under dir (which must
// not exist yet): n rows of the given arity served by rowAt, the float
// segments and equality-code segments keyed by column index, and row
// pages of roughly pageBytes encoded bytes each. Every file is synced
// before WriteEpoch returns, so a subsequent metadata swap publishes a
// fully durable image.
func WriteEpoch(dir string, arity, n int, rowAt func(int) []pref.Value, floats map[int]FloatSeg, eqs map[int][]uint32, pageBytes int) error {
	if pageBytes < 1024 {
		pageBytes = 64 << 10
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := epochMeta{N: n, Arity: arity}

	rf, err := os.Create(filepath.Join(dir, epochRowsFile))
	if err != nil {
		return err
	}
	defer rf.Close()
	var off int64
	buf := make([]byte, 0, pageBytes+4096)
	pageRows := 0
	flush := func() error {
		if pageRows == 0 {
			return nil
		}
		if _, err := rf.Write(buf); err != nil {
			return err
		}
		meta.Pages = append(meta.Pages, epochPage{
			Rows: pageRows, Off: off, Len: int32(len(buf)), CRC: crc32.ChecksumIEEE(buf),
		})
		off += int64(len(buf))
		buf = buf[:0]
		pageRows = 0
		return nil
	}
	for i := 0; i < n; i++ {
		if buf, err = AppendRow(buf, rowAt(i)); err != nil {
			return err
		}
		pageRows++
		if len(buf) >= pageBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := rf.Sync(); err != nil {
		return err
	}

	for ci, seg := range floats {
		if len(seg.Vals) != n || len(seg.Mask) != n {
			return fmt.Errorf("store: float segment %d has %d/%d entries for %d rows", ci, len(seg.Vals), len(seg.Mask), n)
		}
		fbuf := make([]byte, 0, 8*n)
		mbuf := make([]byte, n)
		for i, v := range seg.Vals {
			fbuf = binary.LittleEndian.AppendUint64(fbuf, math.Float64bits(v))
			if seg.Mask[i] {
				mbuf[i] = 1
			}
		}
		if err := writeSynced(filepath.Join(dir, fmt.Sprintf("col_%d.f64", ci)), fbuf); err != nil {
			return err
		}
		if err := writeSynced(filepath.Join(dir, fmt.Sprintf("col_%d.msk", ci)), mbuf); err != nil {
			return err
		}
		meta.Floats = append(meta.Floats, ci)
	}
	for ci, codes := range eqs {
		if len(codes) != n {
			return fmt.Errorf("store: eq segment %d has %d entries for %d rows", ci, len(codes), n)
		}
		ebuf := make([]byte, 0, 4*n)
		for _, c := range codes {
			ebuf = binary.LittleEndian.AppendUint32(ebuf, c)
		}
		if err := writeSynced(filepath.Join(dir, fmt.Sprintf("col_%d.eq", ci)), ebuf); err != nil {
			return err
		}
		meta.Eqs = append(meta.Eqs, ci)
	}
	sort.Ints(meta.Floats)
	sort.Ints(meta.Eqs)

	doc, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	if err := writeSynced(filepath.Join(dir, epochMetaFile), doc); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeSynced writes data to path and fsyncs it.
func writeSynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so freshly created entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Epoch is one opened on-disk shard image: the row-page file (read on
// demand through a Pool) plus the typed views of the columnar
// segments.
type Epoch struct {
	dir      string
	n        int
	arity    int
	pages    []epochPage
	rowStart []int // prefix sums: rowStart[p] = first row of page p
	rowsFile *os.File
	floats   map[int]FloatSeg
	eqs      map[int][]uint32
	maps     [][]byte // live mmap regions, released by Close
	segBytes int64
}

// OpenEpoch opens the epoch at dir. With useMMap set (and on a
// platform that supports it) the column segments are served as typed
// views over shared read-only mappings; otherwise they are decoded
// into the heap. Row pages are always decoded on demand.
func OpenEpoch(dir string, useMMap bool) (*Epoch, error) {
	doc, err := os.ReadFile(filepath.Join(dir, epochMetaFile))
	if err != nil {
		return nil, err
	}
	var meta epochMeta
	if err := json.Unmarshal(doc, &meta); err != nil {
		return nil, fmt.Errorf("store: epoch %s: bad metadata: %w", dir, err)
	}
	e := &Epoch{
		dir: dir, n: meta.N, arity: meta.Arity, pages: meta.Pages,
		floats: make(map[int]FloatSeg, len(meta.Floats)),
		eqs:    make(map[int][]uint32, len(meta.Eqs)),
	}
	e.rowStart = make([]int, len(meta.Pages)+1)
	for p, pg := range meta.Pages {
		e.rowStart[p+1] = e.rowStart[p] + pg.Rows
	}
	if e.rowStart[len(meta.Pages)] != meta.N {
		return nil, fmt.Errorf("store: epoch %s: page directory covers %d of %d rows", dir, e.rowStart[len(meta.Pages)], meta.N)
	}
	e.rowsFile, err = os.Open(filepath.Join(dir, epochRowsFile))
	if err != nil {
		return nil, err
	}
	if fi, err := e.rowsFile.Stat(); err == nil {
		e.segBytes += fi.Size()
	}
	mm := useMMap && mmapSupported
	for _, ci := range meta.Floats {
		vals, valsMap, err := e.openBytes(fmt.Sprintf("col_%d.f64", ci), 8*meta.N, mm)
		if err != nil {
			e.Close()
			return nil, err
		}
		mask, maskMap, err := e.openBytes(fmt.Sprintf("col_%d.msk", ci), meta.N, mm)
		if err != nil {
			e.Close()
			return nil, err
		}
		seg := FloatSeg{}
		if valsMap != nil {
			seg.Vals = f64View(vals, meta.N)
		} else {
			seg.Vals = decodeF64(vals, meta.N)
		}
		if maskMap != nil {
			seg.Mask = boolView(mask, meta.N)
		} else {
			seg.Mask = decodeBools(mask, meta.N)
		}
		e.floats[ci] = seg
	}
	for _, ci := range meta.Eqs {
		raw, rawMap, err := e.openBytes(fmt.Sprintf("col_%d.eq", ci), 4*meta.N, mm)
		if err != nil {
			e.Close()
			return nil, err
		}
		if rawMap != nil {
			e.eqs[ci] = u32View(raw, meta.N)
		} else {
			e.eqs[ci] = decodeU32(raw, meta.N)
		}
	}
	return e, nil
}

// openBytes opens one segment file of the expected size, either
// mapping it (returning the mapping for Close to release) or reading
// it whole.
func (e *Epoch) openBytes(name string, want int, mm bool) (data []byte, mapped []byte, err error) {
	path := filepath.Join(e.dir, name)
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if fi.Size() != int64(want) {
		return nil, nil, fmt.Errorf("store: segment %s is %d bytes, want %d", path, fi.Size(), want)
	}
	e.segBytes += fi.Size()
	if want == 0 {
		return nil, nil, nil
	}
	if mm {
		b, err := mapFile(f, want)
		if err != nil {
			return nil, nil, err
		}
		e.maps = append(e.maps, b)
		return b, b, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, nil, nil
}

// f64View reinterprets a page-aligned little-endian mapping as a
// float64 slice without copying.
func f64View(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

// boolView reinterprets a 0/1 byte mapping as a bool slice.
func boolView(b []byte, n int) []bool {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), n)
}

// u32View reinterprets a page-aligned little-endian mapping as a
// uint32 slice without copying.
func u32View(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// decodeF64 decodes a little-endian float64 segment into the heap.
func decodeF64(b []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// decodeBools decodes a 0/1 byte segment into the heap.
func decodeBools(b []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = b[i] != 0
	}
	return out
}

// decodeU32 decodes a little-endian uint32 segment into the heap.
func decodeU32(b []byte, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// N returns the epoch's row count.
func (e *Epoch) N() int { return e.n }

// Arity returns the epoch's column count.
func (e *Epoch) Arity() int { return e.arity }

// SegmentBytes returns the epoch's total on-disk byte size.
func (e *Epoch) SegmentBytes() int64 { return e.segBytes }

// Floats returns the typed view of column ci's float segment.
func (e *Epoch) Floats(ci int) (vals []float64, mask []bool, ok bool) {
	seg, ok := e.floats[ci]
	return seg.Vals, seg.Mask, ok
}

// Eq returns the typed view of column ci's equality-code segment.
func (e *Epoch) Eq(ci int) ([]uint32, bool) {
	codes, ok := e.eqs[ci]
	return codes, ok
}

// loadPage reads, verifies and decodes one row page from rows.pag.
func (e *Epoch) loadPage(p int) (rows [][]pref.Value, bytes int64, err error) {
	pg := e.pages[p]
	buf := make([]byte, pg.Len)
	if _, err := e.rowsFile.ReadAt(buf, pg.Off); err != nil {
		return nil, 0, fmt.Errorf("store: epoch %s page %d: %w", e.dir, p, err)
	}
	if crc32.ChecksumIEEE(buf) != pg.CRC {
		return nil, 0, fmt.Errorf("store: epoch %s page %d: checksum mismatch", e.dir, p)
	}
	rows = make([][]pref.Value, pg.Rows)
	rest := buf
	for i := range rows {
		if rows[i], rest, err = ReadRow(rest, e.arity); err != nil {
			return nil, 0, fmt.Errorf("store: epoch %s page %d row %d: %w", e.dir, p, i, err)
		}
	}
	return rows, int64(pg.Len), nil
}

// Row returns row i, decoding its page through the pool. The returned
// slice is immutable heap data, valid after the page is evicted.
func (e *Epoch) Row(i int, pool *Pool) ([]pref.Value, error) {
	if i < 0 || i >= e.n {
		return nil, fmt.Errorf("store: epoch %s: row %d out of range [0,%d)", e.dir, i, e.n)
	}
	p := sort.SearchInts(e.rowStart[1:], i+1)
	rows, release, err := pool.Get(PageKey{Owner: e, Page: p}, func() ([][]pref.Value, int64, error) {
		return e.loadPage(p)
	})
	if err != nil {
		return nil, err
	}
	row := rows[i-e.rowStart[p]]
	release()
	return row, nil
}

// AppendAllRows appends every row of the epoch to dst in order,
// decoding page by page through the pool.
func (e *Epoch) AppendAllRows(dst [][]pref.Value, pool *Pool) ([][]pref.Value, error) {
	for p := range e.pages {
		rows, release, err := pool.Get(PageKey{Owner: e, Page: p}, func() ([][]pref.Value, int64, error) {
			return e.loadPage(p)
		})
		if err != nil {
			return nil, err
		}
		dst = append(dst, rows...)
		release()
	}
	return dst, nil
}

// Close releases the epoch's mappings and file handles. It must only
// run when no reader can touch the typed views again — the store calls
// it at shutdown, never on checkpoint (superseded epochs stay mapped
// for pinned snapshots; see the package comment on paging cost).
func (e *Epoch) Close() error {
	var first error
	for _, m := range e.maps {
		if err := unmapFile(m); err != nil && first == nil {
			first = err
		}
	}
	e.maps = nil
	if e.rowsFile != nil {
		if err := e.rowsFile.Close(); err != nil && first == nil {
			first = err
		}
		e.rowsFile = nil
	}
	return first
}
