package store

import (
	"sync"

	"repro/internal/pref"
)

// Buffer pool: a byte-budgeted cache of decoded row pages. The page
// table maps (owner, page index) to a frame; Get pins the frame for
// the duration of the caller's use (release unpins), concurrent
// misses on one page coalesce into a single load, and a clock hand
// sweeps unpinned frames for eviction once the budget is exceeded.
// Frames hold decoded rows — plain heap values — so eviction only
// forgets the cache's reference: rows already handed to readers stay
// valid, which is what lets pinned snapshots outlive any eviction.

// PageKey identifies one cached page: the owning file object (an
// *Epoch, compared by identity) plus the page index within it.
type PageKey struct {
	Owner any
	Page  int
}

// PoolStats is a point-in-time counter snapshot of a pool.
type PoolStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Resident      int
	ResidentBytes int64
	CapBytes      int64
}

// frame is one resident page.
type frame struct {
	key     PageKey
	rows    [][]pref.Value
	bytes   int64
	pins    int
	ref     bool
	loading chan struct{} // closed once rows/err are settled
	err     error
	gone    bool // evicted or failed; no longer in the table
}

// Pool is a clock-eviction buffer pool over decoded row pages.
type Pool struct {
	mu        sync.Mutex
	capBytes  int64
	used      int64
	frames    map[PageKey]*frame
	ring      []*frame
	hand      int
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewPool creates a pool with the given byte capacity. A single page
// larger than the whole budget is still admitted (the pool would be
// useless for it otherwise); the budget is enforced by evicting other
// unpinned pages.
func NewPool(capBytes int64) *Pool {
	if capBytes < 1 {
		capBytes = 1
	}
	return &Pool{capBytes: capBytes, frames: make(map[PageKey]*frame)}
}

// Get returns the page at key, loading it through load on a miss. The
// returned frame is pinned — immune to eviction — until release is
// called; the rows themselves are immutable heap data and remain valid
// after release even if the frame is later evicted. Concurrent misses
// on the same key run load once.
func (p *Pool) Get(key PageKey, load func() (rows [][]pref.Value, bytes int64, err error)) (rows [][]pref.Value, release func(), err error) {
	p.mu.Lock()
	if f, ok := p.frames[key]; ok {
		f.pins++
		f.ref = true
		p.hits++
		p.mu.Unlock()
		<-f.loading
		if f.err != nil {
			p.mu.Lock()
			f.pins--
			p.mu.Unlock()
			return nil, nil, f.err
		}
		return f.rows, func() { p.unpin(f) }, nil
	}
	f := &frame{key: key, pins: 1, ref: true, loading: make(chan struct{})}
	p.frames[key] = f
	p.misses++
	p.mu.Unlock()

	rows, bytes, err := load()
	p.mu.Lock()
	if err != nil {
		f.err = err
		f.gone = true
		f.pins--
		delete(p.frames, key)
		close(f.loading)
		p.mu.Unlock()
		return nil, nil, err
	}
	f.rows, f.bytes = rows, bytes
	p.used += bytes
	p.ring = append(p.ring, f)
	close(f.loading)
	p.evictLocked()
	p.mu.Unlock()
	return rows, func() { p.unpin(f) }, nil
}

// unpin releases one pin on a frame.
func (p *Pool) unpin(f *frame) {
	p.mu.Lock()
	f.pins--
	p.mu.Unlock()
}

// evictLocked sweeps the clock hand until the pool is back under
// budget or every frame is pinned/referenced beyond reclaim. Each
// frame gets one second chance (its ref bit); two full laps without an
// eviction means everything left is pinned, and the pool runs over
// budget rather than blocking.
func (p *Pool) evictLocked() {
	if len(p.ring) == 0 {
		return
	}
	scanned := 0
	for p.used > p.capBytes && scanned < 2*len(p.ring) {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		f := p.ring[p.hand]
		if f.pins > 0 {
			p.hand++
			scanned++
			continue
		}
		if f.ref {
			f.ref = false
			p.hand++
			scanned++
			continue
		}
		// Evict: drop from table and ring; the hand stays put (the
		// swapped-in tail frame takes this slot).
		f.gone = true
		delete(p.frames, f.key)
		p.used -= f.bytes
		p.evictions++
		last := len(p.ring) - 1
		p.ring[p.hand] = p.ring[last]
		p.ring = p.ring[:last]
		scanned = 0
		if len(p.ring) == 0 {
			return
		}
	}
}

// InvalidateOwner drops every unpinned resident page of the given
// owner; Close paths use it so a retired epoch's pages free their
// budget immediately instead of waiting for the clock.
func (p *Pool) InvalidateOwner(owner any) {
	p.mu.Lock()
	kept := p.ring[:0]
	for _, f := range p.ring {
		if f.key.Owner == owner && f.pins == 0 {
			f.gone = true
			delete(p.frames, f.key)
			p.used -= f.bytes
			p.evictions++
			continue
		}
		kept = append(kept, f)
	}
	p.ring = kept
	p.hand = 0
	p.mu.Unlock()
}

// Stats returns the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits:          p.hits,
		Misses:        p.misses,
		Evictions:     p.evictions,
		Resident:      len(p.ring),
		ResidentBytes: p.used,
		CapBytes:      p.capBytes,
	}
}
