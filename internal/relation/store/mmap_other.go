//go:build !linux

package store

import (
	"fmt"
	"os"
)

// mmapSupported reports whether this build serves segments zero-copy;
// non-Linux hosts always decode segments into the heap instead.
const mmapSupported = false

// mapFile is unreachable when mmapSupported is false; it exists so the
// portable build compiles.
func mapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("store: mmap unsupported on this platform")
}

// unmapFile is the portable no-op twin of the Linux munmap.
func unmapFile(b []byte) error { return nil }
