package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/pref"
)

func TestValueRoundTrip(t *testing.T) {
	now := time.Date(2024, 5, 17, 9, 30, 0, 123456789, time.UTC)
	cases := []struct {
		in   pref.Value
		want pref.Value
	}{
		{nil, nil},
		{"", ""},
		{"hello", "hello"},
		{int(42), int64(42)},
		{int8(-7), int64(-7)},
		{int64(1) << 52, int64(1) << 52},
		{3.25, 3.25},
		{float32(1.5), 1.5},
		{math.Inf(1), math.Inf(1)},
		{true, true},
		{false, false},
		{now, now},
		{uint16(9), 9.0}, // exotic numerics persist as their float image
	}
	for _, c := range cases {
		buf, err := AppendValue(nil, c.in)
		if err != nil {
			t.Fatalf("AppendValue(%v): %v", c.in, err)
		}
		got, rest, err := ReadValue(buf)
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", c.in, err)
		}
		if len(rest) != 0 {
			t.Fatalf("ReadValue(%v): %d trailing bytes", c.in, len(rest))
		}
		if tm, ok := c.want.(time.Time); ok {
			if !tm.Equal(got.(time.Time)) {
				t.Fatalf("time round trip: got %v want %v", got, c.want)
			}
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("round trip %v (%T): got %v (%T) want %v (%T)", c.in, c.in, got, got, c.want, c.want)
		}
	}
}

func TestValueRoundTripNaN(t *testing.T) {
	buf, err := AppendValue(nil, math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.(float64)) {
		t.Fatalf("NaN round trip: got %v", got)
	}
}

func TestRowRoundTrip(t *testing.T) {
	row := []pref.Value{"bmw", int64(30000), 231.5, nil, true}
	buf, err := AppendRow(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := ReadRow(buf, len(row))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(got, row) {
		t.Fatalf("got %v want %v", got, row)
	}
}

func TestReadValueTruncated(t *testing.T) {
	buf, _ := AppendValue(nil, "hello world")
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ReadValue(buf[:cut]); err == nil {
			t.Fatalf("ReadValue of %d/%d bytes: want error", cut, len(buf))
		}
	}
}

func walRecords(t *testing.T, path string) [][]byte {
	t.Helper()
	w, recs, err := OpenWAL(path, false)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	w.Close()
	return recs
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	got := walRecords(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("durable-1"))
	w.Append([]byte("durable-2"))
	w.Close()

	// Simulate a crash mid-append: a trailing fragment of a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2}) // length says 9, frame cut inside header/payload
	f.Close()

	recs := walRecords(t, path)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 durable ones", len(recs))
	}
	// Recovery truncates: appends after reopen extend a clean log.
	w2, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("durable-3")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if got := walRecords(t, path); len(got) != 3 || string(got[2]) != "durable-3" {
		t.Fatalf("after truncate+append: %d records", len(got))
	}
}

func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := OpenWAL(path, false)
	w.Append([]byte("aaaa"))
	w.Append([]byte("bbbb"))
	w.Append([]byte("cccc"))
	w.Close()
	// Flip one payload byte of the middle record.
	data, _ := os.ReadFile(path)
	data[8+4+8+2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	recs := walRecords(t, path)
	if len(recs) != 1 || string(recs[0]) != "aaaa" {
		t.Fatalf("replay past corruption: got %d records", len(recs))
	}
}

func TestWALFaultInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("full-record")); err != nil {
		t.Fatal(err)
	}
	defer ClearWALFaults()
	InstallWALFault(path, 10) // cut the next frame after 10 bytes
	if err := w.Append([]byte("torn-record")); err == nil {
		t.Fatal("injected crash append: want error")
	}
	if err := w.Append([]byte("after-crash")); err == nil {
		t.Fatal("append on poisoned WAL: want error")
	}
	w.Close()
	recs := walRecords(t, path)
	if len(recs) != 1 || string(recs[0]) != "full-record" {
		t.Fatalf("recovered %d records, want only the durable prefix", len(recs))
	}
}

func TestPoolHitMissEvict(t *testing.T) {
	type owner struct{ _ int }
	o := &owner{}
	loads := 0
	mk := func(p int) func() ([][]pref.Value, int64, error) {
		return func() ([][]pref.Value, int64, error) {
			loads++
			return [][]pref.Value{{int64(p)}}, 100, nil
		}
	}
	p := NewPool(250) // room for two 100-byte pages
	for i := 0; i < 2; i++ {
		rows, rel, err := p.Get(PageKey{o, 0}, mk(0))
		if err != nil {
			t.Fatal(err)
		}
		if rows[0][0].(int64) != 0 {
			t.Fatal("wrong page")
		}
		rel()
	}
	if loads != 1 {
		t.Fatalf("page 0 loaded %d times, want 1", loads)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Fill past capacity: a page must be evicted.
	for pg := 1; pg <= 3; pg++ {
		_, rel, err := p.Get(PageKey{o, pg}, mk(pg))
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	st = p.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfill: %+v", st)
	}
	if st.ResidentBytes > 250 {
		t.Fatalf("resident %d bytes over budget: %+v", st.ResidentBytes, st)
	}
}

func TestPoolPinnedPagesSurviveEviction(t *testing.T) {
	type owner struct{ _ int }
	o := &owner{}
	p := NewPool(150)
	rows0, rel0, err := p.Get(PageKey{o, 0}, func() ([][]pref.Value, int64, error) {
		return [][]pref.Value{{"pinned"}}, 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// While page 0 is pinned, churn other pages far past the budget.
	for pg := 1; pg <= 5; pg++ {
		_, rel, err := p.Get(PageKey{o, pg}, func() ([][]pref.Value, int64, error) {
			return [][]pref.Value{{int64(pg)}}, 100, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	// The pinned page must still be resident (a Get is a hit, no load).
	got, rel, err := p.Get(PageKey{o, 0}, func() ([][]pref.Value, int64, error) {
		t.Fatal("pinned page was evicted")
		return nil, 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != "pinned" || rows0[0][0] != "pinned" {
		t.Fatal("pinned page content changed")
	}
	rel()
	rel0()
}

func TestPoolLoadErrorNotCached(t *testing.T) {
	type owner struct{ _ int }
	o := &owner{}
	p := NewPool(1000)
	wantErr := fmt.Errorf("disk on fire")
	if _, _, err := p.Get(PageKey{o, 0}, func() ([][]pref.Value, int64, error) {
		return nil, 0, wantErr
	}); err == nil {
		t.Fatal("want load error")
	}
	// The failed load must not poison the key.
	rows, rel, err := p.Get(PageKey{o, 0}, func() ([][]pref.Value, int64, error) {
		return [][]pref.Value{{"ok"}}, 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "ok" {
		t.Fatal("retry served stale frame")
	}
	rel()
}

func testRows(n, arity int) [][]pref.Value {
	rows := make([][]pref.Value, n)
	for i := range rows {
		row := make([]pref.Value, arity)
		row[0] = fmt.Sprintf("name-%d", i)
		for c := 1; c < arity; c++ {
			row[c] = int64(i*10 + c)
		}
		rows[i] = row
	}
	return rows
}

func writeTestEpoch(t *testing.T, dir string, rows [][]pref.Value, arity int) {
	t.Helper()
	n := len(rows)
	floats := map[int]FloatSeg{}
	for c := 1; c < arity; c++ {
		seg := FloatSeg{Vals: make([]float64, n), Mask: make([]bool, n)}
		for i := range rows {
			seg.Vals[i] = float64(rows[i][c].(int64))
			seg.Mask[i] = true
		}
		floats[c] = seg
	}
	eqs := map[int][]uint32{0: make([]uint32, n)}
	for i := range eqs[0] {
		eqs[0][i] = uint32(i + 1)
	}
	if err := WriteEpoch(dir, arity, n, func(i int) []pref.Value { return rows[i] }, floats, eqs, 2048); err != nil {
		t.Fatalf("WriteEpoch: %v", err)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	for _, mm := range []bool{true, false} {
		t.Run(fmt.Sprintf("mmap=%v", mm), func(t *testing.T) {
			const n, arity = 500, 3
			rows := testRows(n, arity)
			dir := filepath.Join(t.TempDir(), "ep1")
			writeTestEpoch(t, dir, rows, arity)

			e, err := OpenEpoch(dir, mm)
			if err != nil {
				t.Fatalf("OpenEpoch: %v", err)
			}
			defer e.Close()
			if e.N() != n || e.Arity() != arity {
				t.Fatalf("epoch %d x %d, want %d x %d", e.N(), e.Arity(), n, arity)
			}
			if len(e.pages) < 2 {
				t.Fatalf("expected multiple pages, got %d", len(e.pages))
			}
			pool := NewPool(1 << 20)
			for _, i := range []int{0, 1, 17, 255, n - 1} {
				got, err := e.Row(i, pool)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, rows[i]) {
					t.Fatalf("row %d: got %v want %v", i, got, rows[i])
				}
			}
			all, err := e.AppendAllRows(nil, pool)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all, rows) {
				t.Fatal("AppendAllRows mismatch")
			}
			vals, mask, ok := e.Floats(1)
			if !ok || len(vals) != n || !mask[0] || vals[17] != float64(rows[17][1].(int64)) {
				t.Fatalf("float segment: ok=%v len=%d", ok, len(vals))
			}
			codes, ok := e.Eq(0)
			if !ok || len(codes) != n || codes[42] != 43 {
				t.Fatalf("eq segment: ok=%v", ok)
			}
			if e.SegmentBytes() <= 0 {
				t.Fatal("SegmentBytes not accounted")
			}
		})
	}
}

func TestEpochTinyPoolStillServesAllRows(t *testing.T) {
	const n, arity = 2000, 3
	rows := testRows(n, arity)
	dir := filepath.Join(t.TempDir(), "ep1")
	writeTestEpoch(t, dir, rows, arity)
	e, err := OpenEpoch(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	pool := NewPool(4096) // far smaller than the row file: constant churn
	for i := 0; i < n; i += 37 {
		got, err := e.Row(i, pool)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rows[i]) {
			t.Fatalf("row %d mismatch under tiny pool", i)
		}
	}
	st := pool.Stats()
	if st.ResidentBytes > 4096+int64(8<<10) {
		t.Fatalf("pool grossly over budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("tiny pool never evicted: %+v", st)
	}
}

func TestEpochCorruptPageDetected(t *testing.T) {
	const n, arity = 200, 2
	rows := testRows(n, arity)
	dir := filepath.Join(t.TempDir(), "ep1")
	writeTestEpoch(t, dir, rows, arity)
	// Flip a byte in the row file.
	path := filepath.Join(dir, epochRowsFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	e, err := OpenEpoch(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	pool := NewPool(1 << 20)
	var sawErr bool
	for i := 0; i < n; i++ {
		if _, err := e.Row(i, pool); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("corrupt page served without a checksum error")
	}
}
