//go:build linux

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build serves segments zero-copy.
const mmapSupported = true

// mapFile maps size bytes of f read-only and shared. The mapping stays
// valid after the file is unlinked (a checkpoint removes superseded
// epoch directories while pinned snapshots still read them) and after
// the descriptor is closed; clean file-backed pages are reclaimed by
// the kernel under pressure, so an idle mapping costs address space,
// not RAM.
func mapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile mapping.
func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
