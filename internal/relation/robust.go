package relation

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// Fault-tolerant shard fan-out. FanShards (sharded.go) is the raw
// bounded sweep every shard-parallel evaluation layer shares; this file
// adds the hardened twin the ctx-aware query paths run on: per-shard
// panic containment (a crashed worker becomes a per-shard error instead
// of a process abort), per-shard deadlines, and early return when the
// query context dies while a shard hangs. The vocabulary for what
// happens next — fail the query or merge the responsive shards — lives
// here too, shared by engine and rank so the policy types need no
// cross-package duplication.

// Policy decides how a sharded evaluation treats per-shard failures
// (worker panic, per-shard deadline, query cancellation mid-fan-out).
type Policy int

// Partial-result policies.
const (
	// PolicyStrict fails the whole query on the first shard failure —
	// the default: a BMO result must never silently drop shards.
	PolicyStrict Policy = iota
	// PolicyPartial merges the responsive shards and reports the missing
	// shard set (see Partial), trading completeness for availability.
	PolicyPartial
)

// String renders the policy name.
func (p Policy) String() string {
	if p == PolicyPartial {
		return "partial"
	}
	return "strict"
}

// Robust configures the fault tolerance of one sharded evaluation: the
// partial-result policy plus an optional per-shard deadline. The zero
// value is the strict, deadline-free default every legacy entry point
// implies.
type Robust struct {
	// Policy selects strict (default) or partial-result semantics.
	Policy Policy
	// ShardTimeout, when positive, bounds each shard worker's run with
	// its own deadline (derived from the query context), so one slow
	// shard cannot stall the fan-out past it.
	ShardTimeout time.Duration
}

// Partial describes an incomplete sharded result under PolicyPartial:
// which shards are missing from the merge and why. The merged result
// restricted to the responsive shards is exact — partial maxima are
// precisely the maxima of the union of responsive shards' rows (the
// partition/merge identity applies to any subset of the partitions) —
// so a Partial never flags wrong rows, only absent ones.
type Partial struct {
	// Missing lists the failed shard indices, ascending.
	Missing []int
	// Errs holds the per-shard cause, aligned with Missing.
	Errs []error
}

// Error renders the missing shard set; Partial is reported alongside a
// result rather than instead of one, so it is not an error value itself,
// but callers logging it want the summary.
func (p *Partial) Error() string {
	if p == nil || len(p.Missing) == 0 {
		return "partial: no shards missing"
	}
	return fmt.Sprintf("partial result: %d shard(s) missing %v: %v", len(p.Missing), p.Missing, p.Errs[0])
}

// PanicError is a shard worker panic converted into a per-shard error
// by FanShardsCtx: the fan-out contains the crash — the query fails (or
// degrades, under PolicyPartial) instead of the process dying.
type PanicError struct {
	// Index is the failed work item (the shard, for shard fan-outs).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("shard worker %d panicked: %v", e.Index, e.Value)
}

// ShardError wraps a per-shard failure with its shard index when a
// strict sharded evaluation fails the whole query.
type ShardError struct {
	// Shard is the failed shard index.
	Shard int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: %v", e.Shard, e.Err)
}

// Unwrap exposes the cause to errors.Is/As (context.DeadlineExceeded,
// *PanicError, ...).
func (e *ShardError) Unwrap() error { return e.Err }

// FanShardsCtx runs f(ctx, 0..n-1) concurrently — at most NumCPU at a
// time, like FanShards — and returns one error slot per item (nil =
// success). It is the hardened fan-out of the ctx-aware sharded paths:
//
//   - A panicking worker is recovered into a *PanicError for its slot;
//     the other workers and the process are untouched.
//   - itemTimeout > 0 derives a per-item deadline from ctx, so each
//     worker observes its own context.DeadlineExceeded.
//   - When ctx itself dies, unstarted items fail fast with ctx.Err(),
//     and the collector stops waiting: items still running are abandoned
//     with ctx.Err() in their slot. An abandoned worker's goroutine
//     exits as soon as its f observes the cancelled context (every
//     engine worker checks cooperatively); its late result is discarded,
//     so callers must only read per-item outputs whose error slot is
//     nil — that read is ordered after the worker's completion send.
//
// f must treat distinct items as independent, exactly like FanShards.
func FanShardsCtx(ctx context.Context, n int, itemTimeout time.Duration, f func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = runShardItem(ctx, i, itemTimeout, f)
		}
		return errs
	}
	type itemResult struct {
		i   int
		err error
	}
	// Buffered to n: a worker's completion send can never block, so no
	// goroutine outlives its work item even when the collector returned
	// early (the goroutine-leak property the stream tests pin).
	results := make(chan itemResult, n)
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		go func(i int) {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results <- itemResult{i, ctx.Err()}
				return
			}
			defer func() { <-sem }()
			results <- itemResult{i, runShardItem(ctx, i, itemTimeout, f)}
		}(i)
	}
	reported := make([]bool, n)
	for got := 0; got < n; {
		select {
		case r := <-results:
			errs[r.i], reported[r.i] = r.err, true
			got++
		case <-ctx.Done():
			// Drain results already queued (completed work should not be
			// reported as abandoned), then stop waiting for the rest.
			for {
				select {
				case r := <-results:
					errs[r.i], reported[r.i] = r.err, true
					got++
					continue
				default:
				}
				break
			}
			for i := range errs {
				if !reported[i] {
					errs[i] = ctx.Err()
				}
			}
			return errs
		}
	}
	return errs
}

// runShardItem runs one work item under its optional per-item deadline,
// converting a panic into a *PanicError.
func runShardItem(ctx context.Context, i int, itemTimeout time.Duration, f func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	if itemTimeout > 0 {
		ictx, cancel := context.WithTimeout(ctx, itemTimeout)
		defer cancel()
		ctx = ictx
	}
	return f(ctx, i)
}

// CollectPartial folds a fan-out's per-item error slots under a policy:
// PolicyStrict returns the first failure wrapped as a *ShardError (ok
// results discarded); PolicyPartial returns the missing shard set, or
// an error only when NO shard responded (an all-shards-missing partial
// result is indistinguishable from a failed query and reports as one).
// A nil, nil return means every shard succeeded.
func CollectPartial(policy Policy, errs []error) (*Partial, error) {
	var part *Partial
	for i, err := range errs {
		if err == nil {
			continue
		}
		if policy == PolicyStrict {
			return nil, &ShardError{Shard: i, Err: err}
		}
		if part == nil {
			part = &Partial{}
		}
		part.Missing = append(part.Missing, i)
		part.Errs = append(part.Errs, err)
	}
	if part != nil && len(part.Missing) == len(errs) {
		return nil, &ShardError{Shard: part.Missing[0], Err: part.Errs[0]}
	}
	return part, nil
}
