package relation

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/pref"
	"repro/internal/relation/store"
)

// Persistent catalogs: a Store roots a directory of tables, each table
// a directory of shard directories, each shard a checkpointed segment
// epoch plus a write-ahead log of the rows appended since. The layout
// is
//
//	<dir>/catalog.json              table manifest (atomic swap)
//	<dir>/<table>/s<k>/meta.json    shard state: current epoch id (atomic swap)
//	<dir>/<table>/s<k>/ep<E>/       immutable segment epoch E (see store.WriteEpoch)
//	<dir>/<table>/s<k>/wal-<E>.log  rows appended on top of epoch E
//
// The recovery invariant: a shard's durable content is exactly its
// current epoch followed by the intact prefix of the epoch's WAL.
// Checkpoints write epoch E+1 (folding the WAL tail in), swap
// meta.json, then delete wal-E and ep<E> — every crash window lands on
// one side of the metadata rename, so cold start always reopens a
// consistent generation. DDL (create/drop/import) swaps catalog.json
// the same way.
//
// Runtime model: the current epoch's column segments are mmap'd and
// served zero-copy into the compiled evaluator; row pages decode on
// demand through one store-wide buffer pool. Superseded epochs stay
// mapped until Close so pinned snapshots (and cached bound forms that
// alias segment memory) never dangle — an unlinked, clean, file-backed
// mapping costs address space, not RAM, and the kernel reclaims its
// pages under pressure.

// StoreOptions tunes a persistent catalog.
type StoreOptions struct {
	// PoolBytes is the buffer-pool budget for decoded row pages.
	// Default 64 MiB. Column segments are mmap'd and do not count
	// against it — the kernel page cache manages them.
	PoolBytes int64
	// PageBytes is the target encoded size of one row page. Default 64 KiB.
	PageBytes int
	// SyncWAL fsyncs the WAL after every append (durability over
	// throughput). Default off: crash durability is then bounded by the
	// OS flush interval, torn tails are discarded either way.
	SyncWAL bool
	// NoMMap decodes column segments into the heap instead of mapping
	// them; the portable mode non-Linux hosts always use.
	NoMMap bool
	// AutoCheckpoint folds the WAL tail into a fresh epoch once it
	// reaches this many rows (0 = checkpoint only on demand/Close).
	AutoCheckpoint int
}

// withDefaults fills unset options.
func (o StoreOptions) withDefaults() StoreOptions {
	if o.PoolBytes <= 0 {
		o.PoolBytes = 64 << 20
	}
	if o.PageBytes <= 0 {
		o.PageBytes = 64 << 10
	}
	return o
}

// Store is a persistent catalog rooted at one directory: it opens,
// creates, checkpoints and drops disk-backed tables (flat or sharded)
// and owns the buffer pool and segment epochs they read through.
type Store struct {
	dir  string
	opts StoreOptions
	pool *store.Pool

	mu     sync.Mutex
	tables map[string]Table
	man    manifest
	closed bool

	epochMu sync.Mutex
	epochs  []*store.Epoch
}

// manifest is the catalog.json document.
type manifest struct {
	Tables []manifestTable `json:"tables"`
}

// manifestTable describes one persistent table.
type manifestTable struct {
	Name   string        `json:"name"`
	Cols   []manifestCol `json:"cols"`
	Shards int           `json:"shards"` // 0 = flat
	Part   *manifestPart `json:"part,omitempty"`
}

// manifestCol is one schema column.
type manifestCol struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// manifestPart serializes the partitioner of a sharded table.
type manifestPart struct {
	Kind   string    `json:"kind"` // "hash" | "range"
	Attr   string    `json:"attr"`
	Bounds []float64 `json:"bounds,omitempty"`
}

// shardPersist ties one *Relation to its shard directory.
type shardPersist struct {
	st    *Store
	dir   string
	label string // "table/s0", for stats
	epoch uint64
	wal   *store.WAL
}

// pagedBase adapts one opened epoch to the generation's base interface:
// row reads through the store's pool, column views straight off the
// epoch.
type pagedBase struct {
	ep   *store.Epoch
	pool *store.Pool
}

func (b *pagedBase) n() int { return b.ep.N() }

func (b *pagedBase) row(i int) Row {
	r, err := b.ep.Row(i, b.pool)
	if err != nil {
		panic(fmt.Sprintf("relation: paged row read failed: %v", err))
	}
	return Row(r)
}

func (b *pagedBase) appendAll(dst []Row) []Row {
	raw, err := b.ep.AppendAllRows(nil, b.pool)
	if err != nil {
		panic(fmt.Sprintf("relation: paged scan failed: %v", err))
	}
	for _, r := range raw {
		dst = append(dst, Row(r))
	}
	return dst
}

func (b *pagedBase) floats(ci int) ([]float64, []bool, bool) { return b.ep.Floats(ci) }
func (b *pagedBase) eq(ci int) ([]uint32, bool)              { return b.ep.Eq(ci) }

// typeFromName parses a manifest column type.
func typeFromName(s string) (Type, error) {
	for _, t := range []Type{String, Int, Float, Bool, Time} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("relation: unknown column type %q in catalog", s)
}

// OpenStore opens (creating if absent) the persistent catalog rooted
// at dir and recovers every table in it: each shard's current epoch is
// opened, its WAL replayed into the in-memory tail, and any torn WAL
// tail or orphaned temp/superseded files from a crashed checkpoint are
// cleaned up.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{
		dir:    dir,
		opts:   opts,
		pool:   store.NewPool(opts.PoolBytes),
		tables: make(map[string]Table),
	}
	doc, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return nil, err
	}
	if err := json.Unmarshal(doc, &st.man); err != nil {
		return nil, fmt.Errorf("relation: store %s: bad catalog: %w", dir, err)
	}
	for _, mt := range st.man.Tables {
		t, err := st.openTable(mt)
		if err != nil {
			return nil, fmt.Errorf("relation: store %s: table %s: %w", dir, mt.Name, err)
		}
		st.tables[mt.Name] = t
	}
	return st, nil
}

// openTable recovers one manifest table.
func (st *Store) openTable(mt manifestTable) (Table, error) {
	cols := make([]Column, len(mt.Cols))
	for i, c := range mt.Cols {
		t, err := typeFromName(c.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: c.Name, Type: t}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if mt.Shards == 0 {
		return st.openShard(mt.Name, filepath.Join(st.dir, mt.Name, "s0"), mt.Name+"/s0", schema)
	}
	part, err := partFromManifest(mt.Part)
	if err != nil {
		return nil, err
	}
	shards := make([]*Relation, mt.Shards)
	for i := range shards {
		sdir := filepath.Join(st.dir, mt.Name, fmt.Sprintf("s%d", i))
		shards[i], err = st.openShard(fmt.Sprintf("%s#%d", mt.Name, i), sdir, fmt.Sprintf("%s/s%d", mt.Name, i), schema)
		if err != nil {
			return nil, err
		}
	}
	s := &Sharded{name: mt.Name, schema: schema}
	s.state.Store(&shardState{part: part, shards: shards})
	return s, nil
}

// partFromManifest rebuilds a serialized partitioner.
func partFromManifest(p *manifestPart) (Partitioner, error) {
	if p == nil {
		return nil, fmt.Errorf("sharded table without partitioner in catalog")
	}
	switch p.Kind {
	case "hash":
		return ByHash(p.Attr), nil
	case "range":
		return ByRange(p.Attr, p.Bounds...), nil
	}
	return nil, fmt.Errorf("unknown partitioner kind %q in catalog", p.Kind)
}

// partToManifest serializes a partitioner; only the built-in hash and
// range partitioners are persistable.
func partToManifest(p Partitioner) (*manifestPart, error) {
	switch t := p.(type) {
	case hashPart:
		return &manifestPart{Kind: "hash", Attr: t.attr}, nil
	case rangePart:
		return &manifestPart{Kind: "range", Attr: t.attr, Bounds: t.bounds}, nil
	}
	return nil, fmt.Errorf("relation: partitioner %v is not persistable (use ByHash or ByRange)", p)
}

// shardMeta is the per-shard meta.json document.
type shardMeta struct {
	Epoch uint64 `json:"epoch"`
}

// openShard recovers one shard directory: current epoch + WAL replay.
func (st *Store) openShard(name, dir, label string, schema *Schema) (*Relation, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var meta shardMeta
	if doc, err := os.ReadFile(filepath.Join(dir, "meta.json")); err == nil {
		if err := json.Unmarshal(doc, &meta); err != nil {
			return nil, fmt.Errorf("shard %s: bad meta: %w", dir, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	sp := &shardPersist{st: st, dir: dir, label: label, epoch: meta.Epoch}

	var base *pagedBase
	if meta.Epoch > 0 {
		ep, err := store.OpenEpoch(filepath.Join(dir, fmt.Sprintf("ep%d", meta.Epoch)), !st.opts.NoMMap)
		if err != nil {
			return nil, fmt.Errorf("shard %s: epoch %d: %w", dir, meta.Epoch, err)
		}
		if ep.Arity() != schema.Len() {
			ep.Close()
			return nil, fmt.Errorf("shard %s: epoch arity %d does not match schema arity %d", dir, ep.Arity(), schema.Len())
		}
		st.trackEpoch(ep)
		base = &pagedBase{ep: ep, pool: st.pool}
	}

	wal, recs, err := store.OpenWAL(sp.walPath(meta.Epoch), st.opts.SyncWAL)
	if err != nil {
		return nil, fmt.Errorf("shard %s: wal: %w", dir, err)
	}
	sp.wal = wal
	tail := make([]Row, 0, len(recs))
	for i, rec := range recs {
		row, rest, err := store.ReadRow(rec, schema.Len())
		if err != nil || len(rest) != 0 {
			wal.Close()
			return nil, fmt.Errorf("shard %s: wal record %d corrupt: %v", dir, i, err)
		}
		tail = append(tail, Row(row))
	}
	sp.cleanupStale()

	r := New(name, schema)
	r.persist = sp
	r.gen.Store(&generation{base: base, rows: tail})
	return r, nil
}

// walPath names the WAL that accompanies epoch e.
func (sp *shardPersist) walPath(e uint64) string {
	return filepath.Join(sp.dir, fmt.Sprintf("wal-%d.log", e))
}

// cleanupStale removes epoch directories, temp files and WALs other
// than the current ones — the leftovers of a checkpoint that crashed
// after its metadata swap but before its deletes.
func (sp *shardPersist) cleanupStale() {
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		return
	}
	curEp := fmt.Sprintf("ep%d", sp.epoch)
	curWAL := fmt.Sprintf("wal-%d.log", sp.epoch)
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == "meta.json" || name == curEp || name == curWAL:
		case strings.HasPrefix(name, "ep") || strings.HasPrefix(name, "wal-") || strings.HasSuffix(name, ".tmp"):
			os.RemoveAll(filepath.Join(sp.dir, name))
		}
	}
}

// logInsert write-ahead-logs one row; called under the relation's
// writer lock.
func (sp *shardPersist) logInsert(row Row) error {
	buf, err := store.AppendRow(nil, row)
	if err != nil {
		return err
	}
	return sp.wal.Append(buf)
}

// maybeCheckpointLocked folds the tail into a fresh epoch if it has
// grown past the auto-checkpoint threshold; called under the writer
// lock with g the just-published generation. Checkpoint failures are
// deliberately swallowed here: the WAL already holds the rows, so
// durability is unaffected and the next threshold crossing retries.
func (sp *shardPersist) maybeCheckpointLocked(r *Relation, g *generation) {
	if n := sp.st.opts.AutoCheckpoint; n > 0 && len(g.rows) >= n {
		sp.checkpointLocked(r, g)
	}
}

// checkpointLocked writes the generation's full contents as epoch E+1,
// swaps the shard metadata, rotates the WAL and publishes a successor
// generation over the new base. The version is NOT bumped: the logical
// contents are unchanged, so cached bound forms and memoized maxima
// keyed by (relation, version) stay warm and correct — they alias the
// superseded generation's arrays, which remain valid. Caller holds
// r.mu.
func (sp *shardPersist) checkpointLocked(r *Relation, g *generation) error {
	ng, err := sp.rewriteLocked(g.all(), g.version)
	if err != nil {
		return err
	}
	r.gen.Store(ng)
	return nil
}

// rewriteLocked materializes rows as the shard's next epoch and
// returns the generation serving it. On any error before the metadata
// swap the shard's durable state is untouched. Caller holds r.mu.
func (sp *shardPersist) rewriteLocked(rows []Row, version uint64) (*generation, error) {
	st := sp.st
	next := sp.epoch + 1
	epDir := filepath.Join(sp.dir, fmt.Sprintf("ep%d", next))
	os.RemoveAll(epDir) // stale leftover from a crashed checkpoint

	schemaLen := 0
	if len(rows) > 0 {
		schemaLen = len(rows[0])
	}
	// Derive the columnar segments exactly as the in-memory build
	// would, so the persisted images are bit-for-bit the arrays the
	// compiled evaluator already binds against.
	floats := make(map[int]store.FloatSeg)
	eqs := make(map[int][]uint32)
	for ci := 0; ci < schemaLen; ci++ {
		col := buildFloatColumn(rows, ci)
		any := false
		for _, on := range col.onScale {
			if on {
				any = true
				break
			}
		}
		// Persist the float image for every column that could serve a
		// FloatColumn: cheap (8+1 bytes/row) and avoids re-deriving
		// schema knowledge here. All-off-scale columns skip the files.
		if any {
			floats[ci] = store.FloatSeg{Vals: col.vals, Mask: col.onScale}
		}
		eqs[ci] = buildEqColumn(rows, ci)
	}
	err := store.WriteEpoch(epDir, schemaLen, len(rows),
		func(i int) []pref.Value { return rows[i] }, floats, eqs, st.opts.PageBytes)
	if err != nil {
		os.RemoveAll(epDir)
		return nil, err
	}
	ep, err := store.OpenEpoch(epDir, !st.opts.NoMMap)
	if err != nil {
		os.RemoveAll(epDir)
		return nil, err
	}

	// Fresh (empty) WAL for the new epoch, created before the swap so
	// recovery never finds metadata pointing at a missing log.
	newWAL, _, err := store.OpenWAL(sp.walPath(next), st.opts.SyncWAL)
	if err != nil {
		ep.Close()
		os.RemoveAll(epDir)
		return nil, err
	}
	if err := sp.swapMeta(shardMeta{Epoch: next}); err != nil {
		newWAL.Close()
		os.Remove(sp.walPath(next))
		ep.Close()
		os.RemoveAll(epDir)
		return nil, err
	}

	// Point of no return: the swap published epoch E+1. Retire the old
	// WAL and epoch directory (pinned snapshots keep reading the old
	// epoch through its open mapping; the files' space frees when the
	// store closes).
	oldWAL, oldEpoch := sp.wal, sp.epoch
	sp.wal, sp.epoch = newWAL, next
	oldWAL.Close()
	os.Remove(sp.walPath(oldEpoch))
	if oldEpoch > 0 {
		os.RemoveAll(filepath.Join(sp.dir, fmt.Sprintf("ep%d", oldEpoch)))
	}
	st.trackEpoch(ep)

	return &generation{
		base:    &pagedBase{ep: ep, pool: st.pool},
		version: version,
	}, nil
}

// swapMeta atomically replaces the shard's meta.json.
func (sp *shardPersist) swapMeta(m shardMeta) error {
	doc, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(sp.dir, "meta.json.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(sp.dir, "meta.json")); err != nil {
		return err
	}
	d, err := os.Open(sp.dir)
	if err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// trackEpoch records an opened epoch for Close-time release.
func (st *Store) trackEpoch(ep *store.Epoch) {
	st.epochMu.Lock()
	st.epochs = append(st.epochs, ep)
	st.epochMu.Unlock()
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Table returns the named table, if present.
func (st *Store) Table(name string) (Table, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.tables[name]
	return t, ok
}

// Tables returns a copy of the catalog's table map; prefserve hands it
// to psql.Catalog.
func (st *Store) Tables() map[string]Table {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]Table, len(st.tables))
	for k, v := range st.tables {
		out[k] = v
	}
	return out
}

// CreateTable creates an empty persistent flat table.
func (st *Store) CreateTable(name string, schema *Schema) (*Relation, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.checkCreate(name); err != nil {
		return nil, err
	}
	r, err := st.openShard(name, filepath.Join(st.dir, name, "s0"), name+"/s0", schema)
	if err != nil {
		return nil, err
	}
	mt := manifestTable{Name: name, Cols: colsToManifest(schema)}
	if err := st.addManifestLocked(mt); err != nil {
		return nil, err
	}
	st.tables[name] = r
	return r, nil
}

// CreateSharded creates an empty persistent sharded table. Only the
// built-in hash and range partitioners are persistable.
func (st *Store) CreateSharded(name string, schema *Schema, nShards int, part Partitioner) (*Sharded, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.checkCreate(name); err != nil {
		return nil, err
	}
	mp, err := partToManifest(part)
	if err != nil {
		return nil, err
	}
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("relation %s: shard count %d outside [1, %d]", name, nShards, maxShards)
	}
	if c, ok := part.(shardCountChecker); ok {
		if err := c.checkShards(nShards); err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
	}
	shards := make([]*Relation, nShards)
	for i := range shards {
		shards[i], err = st.openShard(fmt.Sprintf("%s#%d", name, i),
			filepath.Join(st.dir, name, fmt.Sprintf("s%d", i)),
			fmt.Sprintf("%s/s%d", name, i), schema)
		if err != nil {
			return nil, err
		}
	}
	s := &Sharded{name: name, schema: schema}
	s.state.Store(&shardState{part: part, shards: shards})
	mt := manifestTable{Name: name, Cols: colsToManifest(schema), Shards: nShards, Part: mp}
	if err := st.addManifestLocked(mt); err != nil {
		return nil, err
	}
	st.tables[name] = s
	return s, nil
}

// ImportTable persists an existing in-memory table (flat or sharded)
// into the store under its own name, bulk-writing one epoch per shard,
// and returns the new persistent table. The source is left untouched.
func (st *Store) ImportTable(t Table) (Table, error) {
	switch src := t.(type) {
	case *Relation:
		r, err := st.CreateTable(src.Name(), src.Schema())
		if err != nil {
			return nil, err
		}
		if err := r.persist.bulkLoad(r, src.Rows()); err != nil {
			return nil, err
		}
		return r, nil
	case *Sharded:
		sst := src.state.Load()
		s, err := st.CreateSharded(src.Name(), src.Schema(), len(sst.shards), sst.part)
		if err != nil {
			return nil, err
		}
		for i, sh := range s.state.Load().shards {
			if err := sh.persist.bulkLoad(sh, sst.shards[i].Rows()); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	return nil, fmt.Errorf("relation: cannot import table %s (%T)", t.Name(), t)
}

// bulkLoad writes rows straight to a fresh epoch, bypassing the WAL.
func (sp *shardPersist) bulkLoad(r *Relation, rows []Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ng, err := sp.rewriteLocked(rows, r.cur().version+1)
	if err != nil {
		return err
	}
	r.gen.Store(ng)
	return nil
}

// checkCreate validates a new table name; caller holds st.mu.
func (st *Store) checkCreate(name string) error {
	if st.closed {
		return fmt.Errorf("relation: store %s is closed", st.dir)
	}
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("relation: invalid table name %q", name)
	}
	if _, dup := st.tables[name]; dup {
		return fmt.Errorf("relation: table %q already exists in store", name)
	}
	return nil
}

// colsToManifest serializes a schema.
func colsToManifest(s *Schema) []manifestCol {
	out := make([]manifestCol, s.Len())
	for i, c := range s.Columns() {
		out[i] = manifestCol{Name: c.Name, Type: c.Type.String()}
	}
	return out
}

// addManifestLocked appends a table to the manifest and swaps
// catalog.json; caller holds st.mu.
func (st *Store) addManifestLocked(mt manifestTable) error {
	st.man.Tables = append(st.man.Tables, mt)
	if err := st.writeCatalogLocked(); err != nil {
		st.man.Tables = st.man.Tables[:len(st.man.Tables)-1]
		return err
	}
	return nil
}

// writeCatalogLocked atomically replaces catalog.json.
func (st *Store) writeCatalogLocked() error {
	doc, err := json.MarshalIndent(&st.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(st.dir, "catalog.json.tmp")
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, "catalog.json")); err != nil {
		return err
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Drop removes a table from the catalog and deletes its directory.
// Cache eviction for the dropped identities is the caller's concern,
// exactly as with psql.Catalog.Drop.
func (st *Store) Drop(name string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.tables[name]; !ok {
		return fmt.Errorf("relation: store has no table %q", name)
	}
	kept := st.man.Tables[:0]
	for _, mt := range st.man.Tables {
		if mt.Name != name {
			kept = append(kept, mt)
		}
	}
	st.man.Tables = kept
	if err := st.writeCatalogLocked(); err != nil {
		return err
	}
	delete(st.tables, name)
	os.RemoveAll(filepath.Join(st.dir, name))
	return nil
}

// persistentRelations lists every shard relation the store owns.
func (st *Store) persistentRelations() []*Relation {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []*Relation
	for _, t := range st.tables {
		switch v := t.(type) {
		case *Relation:
			out = append(out, v)
		case *Sharded:
			out = append(out, v.state.Load().shards...)
		}
	}
	return out
}

// Checkpoint folds every shard's WAL tail into a fresh segment epoch;
// shards with empty tails are untouched. It is what Close runs, and
// what a server drain calls to flush before shutdown.
func (st *Store) Checkpoint() error {
	var first error
	for _, r := range st.persistentRelations() {
		r.mu.Lock()
		g := r.cur()
		if len(g.rows) > 0 {
			if err := r.persist.checkpointLocked(r, g); err != nil && first == nil {
				first = err
			}
		}
		r.mu.Unlock()
	}
	return first
}

// Close checkpoints every table, closes the WALs and releases every
// epoch mapping. The store and its tables must not be used afterwards;
// readers still holding pinned snapshots must be drained first (the
// server's shutdown path does exactly that).
func (st *Store) Close() error {
	err := st.Checkpoint()
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	for _, r := range st.persistentRelations() {
		r.mu.Lock()
		if r.persist.wal != nil {
			r.persist.wal.Close()
		}
		r.mu.Unlock()
	}
	st.epochMu.Lock()
	for _, ep := range st.epochs {
		st.pool.InvalidateOwner(ep)
		if cerr := ep.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	st.epochs = nil
	st.epochMu.Unlock()
	return err
}

// ShardStat is one shard's persistence footprint.
type ShardStat struct {
	Shard        string // "table/s0"
	SegmentBytes int64
	WALBytes     int64
	TailRows     int
}

// StoreStats is a point-in-time view of a store's paging behavior.
type StoreStats struct {
	Pool   store.PoolStats
	Shards []ShardStat
}

// WALBytes sums the live WAL sizes across shards.
func (s StoreStats) WALBytes() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.WALBytes
	}
	return n
}

// SegmentBytes sums the current-epoch segment sizes across shards.
func (s StoreStats) SegmentBytes() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.SegmentBytes
	}
	return n
}

// Stats reports buffer-pool counters plus per-shard WAL and segment
// sizes — the numbers prefctl's \stats renders.
func (st *Store) Stats() StoreStats {
	out := StoreStats{Pool: st.pool.Stats()}
	for _, r := range st.persistentRelations() {
		r.mu.Lock()
		sp := r.persist
		stat := ShardStat{Shard: sp.label, TailRows: len(r.cur().rows)}
		if sp.wal != nil {
			stat.WALBytes = sp.wal.Size()
		}
		if base := r.cur().base; base != nil {
			stat.SegmentBytes = base.ep.SegmentBytes()
		}
		r.mu.Unlock()
		out.Shards = append(out.Shards, stat)
	}
	sort.Slice(out.Shards, func(i, j int) bool { return out.Shards[i].Shard < out.Shards[j].Shard })
	return out
}

// Pool exposes the store's buffer pool (tests and stats use it).
func (st *Store) Pool() *store.Pool { return st.pool }
