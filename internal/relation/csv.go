package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/pref"
)

// ReadCSV loads a relation from CSV. The first record is the header; column
// types are inferred from the data (INT, then FLOAT, then BOOL, then TIME
// in "2006-01-02" layout, falling back to STRING). Empty cells become NULL.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV for %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: CSV for %s has no header", name)
	}
	header := records[0]
	data := records[1:]
	types := make([]Type, len(header))
	for c := range header {
		types[c] = inferColumnType(data, c)
	}
	cols := make([]Column, len(header))
	for c, h := range header {
		cols[c] = Column{Name: strings.TrimSpace(h), Type: types[c]}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	for ln, rec := range data {
		row := make(Row, len(header))
		for c := range header {
			cell := ""
			if c < len(rec) {
				cell = strings.TrimSpace(rec[c])
			}
			v, err := parseCell(types[c], cell)
			if err != nil {
				return nil, fmt.Errorf("relation: %s line %d column %s: %w", name, ln+2, header[c], err)
			}
			row[c] = v
		}
		if err := rel.Insert(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// LoadCSVFile loads a relation from a CSV file; the relation is named after
// the file's base name without extension.
func LoadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".csv")
	return ReadCSV(base, f)
}

const csvTimeLayout = "2006-01-02"

func inferColumnType(data [][]string, c int) Type {
	couldInt, couldFloat, couldBool, couldTime := true, true, true, true
	nonEmpty := 0
	for _, rec := range data {
		if c >= len(rec) {
			continue
		}
		cell := strings.TrimSpace(rec[c])
		if cell == "" {
			continue
		}
		nonEmpty++
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			couldInt = false
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			couldFloat = false
		}
		if _, err := strconv.ParseBool(cell); err != nil {
			couldBool = false
		}
		if _, err := time.Parse(csvTimeLayout, cell); err != nil {
			couldTime = false
		}
	}
	if nonEmpty == 0 {
		return String
	}
	switch {
	case couldInt:
		return Int
	case couldFloat:
		return Float
	case couldBool:
		return Bool
	case couldTime:
		return Time
	}
	return String
}

func parseCell(t Type, cell string) (pref.Value, error) {
	if cell == "" {
		return nil, nil
	}
	switch t {
	case Int:
		n, err := strconv.ParseInt(cell, 10, 64)
		return n, err
	case Float:
		f, err := strconv.ParseFloat(cell, 64)
		return f, err
	case Bool:
		b, err := strconv.ParseBool(cell)
		return b, err
	case Time:
		ts, err := time.Parse(csvTimeLayout, cell)
		return ts, err
	}
	return cell, nil
}

// WriteCSV writes the relation as CSV with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.Names()); err != nil {
		return err
	}
	for _, row := range r.Rows() {
		rec := make([]string, len(row))
		for i, v := range row {
			if v == nil {
				rec[i] = ""
				continue
			}
			if t, ok := v.(time.Time); ok {
				rec[i] = t.Format(csvTimeLayout)
				continue
			}
			rec[i] = pref.FormatValue(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
