package relation

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pref"
)

func carSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "color", Type: String},
		Column{Name: "price", Type: Float},
	)
}

func sample(t *testing.T) *Relation {
	t.Helper()
	return New("car", carSchema(t)).MustInsert(
		Row{int64(1), "red", 10.0},
		Row{int64(2), "red", 20.0},
		Row{int64(3), "blue", 10.0},
	)
}

func TestSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: Int}, Column{Name: "a", Type: String}); err == nil {
		t.Fatal("duplicate column names must be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema must panic on duplicates")
		}
	}()
	MustSchema(Column{Name: "a", Type: Int}, Column{Name: "a", Type: Int})
}

func TestSchemaAccessors(t *testing.T) {
	s := carSchema(t)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if i, ok := s.Index("color"); !ok || i != 1 {
		t.Errorf("Index(color) = %d, %v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("unknown column found")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "id" || names[2] != "price" {
		t.Errorf("Names = %v", names)
	}
	if s.Col(1).Name != "color" {
		t.Error("Col broken")
	}
	if len(s.Columns()) != 3 {
		t.Error("Columns broken")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	r := New("car", carSchema(t))
	if err := r.Insert(Row{int64(1), "red", 9.5}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := r.Insert(Row{"one", "red", 9.5}); err == nil {
		t.Error("string into INT column must fail")
	}
	if err := r.Insert(Row{int64(1), int64(2), 9.5}); err == nil {
		t.Error("int into STRING column must fail")
	}
	if err := r.Insert(Row{int64(1), "red"}); err == nil {
		t.Error("arity mismatch must fail")
	}
	// NULLs are allowed in every column.
	if err := r.Insert(Row{nil, nil, nil}); err != nil {
		t.Errorf("NULLs must be allowed: %v", err)
	}
	// Float column accepts ints (numeric family).
	if err := r.Insert(Row{int64(2), "blue", int64(7)}); err != nil {
		t.Errorf("int into FLOAT column should work: %v", err)
	}
}

func TestTypeChecksAllTypes(t *testing.T) {
	s := MustSchema(
		Column{Name: "b", Type: Bool},
		Column{Name: "t", Type: Time},
	)
	r := New("x", s)
	if err := r.Insert(Row{true, time.Now()}); err != nil {
		t.Fatalf("bool/time row rejected: %v", err)
	}
	if err := r.Insert(Row{"yes", time.Now()}); err == nil {
		t.Error("string into BOOL must fail")
	}
	if err := r.Insert(Row{false, "2001-01-01"}); err == nil {
		t.Error("string into TIME must fail")
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{String: "STRING", Int: "INT", Float: "FLOAT", Bool: "BOOL", Time: "TIME"} {
		if typ.String() != want {
			t.Errorf("%v", typ)
		}
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Error("unknown type rendering")
	}
}

func TestTupleView(t *testing.T) {
	r := sample(t)
	tup := r.Tuple(0)
	if v, ok := tup.Get("color"); !ok || v != "red" {
		t.Errorf("Get(color) = %v, %v", v, ok)
	}
	if _, ok := tup.Get("nope"); ok {
		t.Error("unknown attribute must report absent")
	}
	if len(r.Tuples()) != 3 {
		t.Error("Tuples length")
	}
}

func TestSelect(t *testing.T) {
	r := sample(t)
	red := r.Select(func(tup pref.Tuple) bool {
		v, _ := tup.Get("color")
		return v == "red"
	})
	if red.Len() != 2 {
		t.Errorf("red cars = %d, want 2", red.Len())
	}
	if r.Len() != 3 {
		t.Error("Select must not mutate the source")
	}
}

func TestPick(t *testing.T) {
	r := sample(t)
	p := r.Pick([]int{2, 0})
	if p.Len() != 2 {
		t.Fatal("Pick length")
	}
	if v, _ := p.Tuple(0).Get("id"); !pref.EqualValues(v, int64(3)) {
		t.Error("Pick must preserve given order")
	}
}

func TestProjectAndDistinct(t *testing.T) {
	r := sample(t)
	p, err := r.Project([]string{"color"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || p.Schema().Len() != 1 {
		t.Error("projection shape wrong")
	}
	d, err := r.DistinctProject([]string{"color"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("distinct colors = %d, want 2", d.Len())
	}
	if _, err := r.Project([]string{"nope"}); err == nil {
		t.Error("unknown column must fail")
	}
	if got := r.DistinctCount([]string{"price"}); got != 2 {
		t.Errorf("DistinctCount(price) = %d, want 2", got)
	}
}

func TestGroups(t *testing.T) {
	r := sample(t)
	groups := r.Groups([]string{"color"})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	// First-seen order: red group first with rows 0, 1.
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Errorf("red group = %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 2 {
		t.Errorf("blue group = %v", groups[1])
	}
}

func TestSortByAndClone(t *testing.T) {
	r := sample(t)
	c := r.Clone()
	c.SortBy(func(a, b pref.Tuple) bool {
		av, _ := a.Get("price")
		bv, _ := b.Get("price")
		cmp, _ := pref.CompareValues(av, bv)
		return cmp > 0 // descending
	})
	if v, _ := c.Tuple(0).Get("price"); !pref.EqualValues(v, 20.0) {
		t.Error("sort descending by price failed")
	}
	// Original untouched.
	if v, _ := r.Tuple(0).Get("id"); !pref.EqualValues(v, int64(1)) {
		t.Error("Clone must isolate mutations")
	}
}

func TestFromRows(t *testing.T) {
	r, err := FromRows("x", carSchema(t), []Row{{int64(1), "red", 1.0}})
	if err != nil || r.Len() != 1 {
		t.Fatalf("FromRows: %v", err)
	}
	if _, err := FromRows("x", carSchema(t), []Row{{int64(1)}}); err == nil {
		t.Error("bad rows must fail")
	}
}

func TestStringRendering(t *testing.T) {
	out := sample(t).String()
	if !strings.Contains(out, "id") || !strings.Contains(out, "red") || !strings.Contains(out, "---") {
		t.Errorf("table rendering missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInsert must panic on type errors")
		}
	}()
	New("car", carSchema(t)).MustInsert(Row{"bad", "red", 1.0})
}
