package relation

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestFanShardsCtxAllSucceed(t *testing.T) {
	var ran atomic.Int64
	errs := FanShardsCtx(context.Background(), 8, 0, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if len(errs) != 8 {
		t.Fatalf("got %d slots, want 8", len(errs))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d items, want 8", ran.Load())
	}
}

func TestFanShardsCtxPanicContainment(t *testing.T) {
	errs := FanShardsCtx(context.Background(), 4, 0, func(ctx context.Context, i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	for i, err := range errs {
		if i == 2 {
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Index != 2 || pe.Value != "boom" {
				t.Fatalf("slot 2: err = %v, want *PanicError{Index: 2, Value: boom}", err)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("contained panic lost its stack")
			}
			continue
		}
		if err != nil {
			t.Fatalf("slot %d poisoned by the panic: %v", i, err)
		}
	}
}

func TestFanShardsCtxItemTimeout(t *testing.T) {
	start := time.Now()
	errs := FanShardsCtx(context.Background(), 3, 30*time.Millisecond, func(ctx context.Context, i int) error {
		if i == 1 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("per-item deadline did not bound the hang: %v", elapsed)
	}
	if !errors.Is(errs[1], context.DeadlineExceeded) {
		t.Fatalf("slot 1: err = %v, want deadline exceeded", errs[1])
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy slots failed: %v %v", errs[0], errs[2])
	}
}

func TestFanShardsCtxDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	errs := FanShardsCtx(ctx, 5, 0, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("slot %d: err = %v, want context.Canceled", i, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("dead context still ran %d items", ran.Load())
	}
}

func TestFanShardsCtxAbandonsHungWorker(t *testing.T) {
	if runtime.NumCPU() < 2 {
		// The serial fallback runs items inline and cannot abandon a
		// worker that ignores its context.
		t.Skip("needs the concurrent fan-out path")
	}
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	errs := FanShardsCtx(ctx, 4, 0, func(ictx context.Context, i int) error {
		if i == 0 {
			// Ignores its context: the collector must abandon it rather
			// than wait forever.
			<-release
		}
		return nil
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("collector waited on the hung worker: %v", elapsed)
	}
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("abandoned slot: err = %v, want context.Canceled", errs[0])
	}
	close(release)
}

func TestCollectPartialStrict(t *testing.T) {
	cause := errors.New("x")
	part, err := CollectPartial(PolicyStrict, []error{nil, cause, nil})
	if part != nil {
		t.Fatalf("strict returned a partial: %+v", part)
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 1 || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want *ShardError{Shard: 1} wrapping the cause", err)
	}
}

func TestCollectPartialPartial(t *testing.T) {
	part, err := CollectPartial(PolicyPartial, []error{nil, errors.New("a"), nil, errors.New("b")})
	if err != nil {
		t.Fatal(err)
	}
	if part == nil || fmt.Sprint(part.Missing) != "[1 3]" {
		t.Fatalf("missing = %+v, want [1 3]", part)
	}
	if len(part.Errs) != 2 {
		t.Fatalf("causes = %v", part.Errs)
	}
	// All healthy: nil, nil.
	part, err = CollectPartial(PolicyPartial, []error{nil, nil})
	if part != nil || err != nil {
		t.Fatalf("healthy fan-out reported %v, %v", part, err)
	}
}

func TestCollectPartialAllMissing(t *testing.T) {
	part, err := CollectPartial(PolicyPartial, []error{errors.New("a"), errors.New("b")})
	if err == nil {
		t.Fatalf("all-missing returned a partial result: %+v", part)
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("err = %v, want *ShardError for the first failed shard", err)
	}
}
