package relation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pref"
)

// projectionGroups is the pre-equality-code reference implementation:
// group keys built by per-row ProjectionKey strings. The new code path
// must agree with it exactly on NaN-free data.
func projectionGroups(r *Relation, attrs []string, idx []int) [][]int {
	if idx == nil {
		idx = make([]int, r.Len())
		for i := range idx {
			idx[i] = i
		}
	}
	var order []string
	byKey := make(map[string][]int)
	for _, i := range idx {
		k := pref.ProjectionKey(r.Tuple(i), attrs)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	out := make([][]int, len(order))
	for j, k := range order {
		out[j] = byKey[k]
	}
	return out
}

func sameGroups(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for g := range a {
		if len(a[g]) != len(b[g]) {
			return false
		}
		for i := range a[g] {
			if a[g][i] != b[g][i] {
				return false
			}
		}
	}
	return true
}

// TestGroupsOnAgreesWithProjectionKeys: on NaN-free data the equality-code
// grouping must produce exactly the groups (and group order) the old
// string-key implementation produced — single and multi attribute, full
// relation and candidate subsets, mixed column types.
func TestGroupsOnAgreesWithProjectionKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	makes := []string{"Opel", "BMW", "Ford"}
	for trial := 0; trial < 30; trial++ {
		r := New("cars", MustSchema(
			Column{Name: "make", Type: String},
			Column{Name: "doors", Type: Int},
			Column{Name: "price", Type: Float},
		))
		n := 5 + rng.Intn(120)
		for i := 0; i < n; i++ {
			var price pref.Value = math.Floor(rng.Float64() * 4)
			if rng.Intn(10) == 0 {
				price = nil
			}
			r.MustInsert(Row{makes[rng.Intn(len(makes))], int64(rng.Intn(3)), price})
		}
		var idx []int
		for i := 0; i < n; i++ {
			if rng.Intn(4) > 0 {
				idx = append(idx, i)
			}
		}
		for _, attrs := range [][]string{
			{"make"}, {"doors"}, {"price"},
			{"make", "doors"}, {"make", "doors", "price"},
		} {
			if got, want := r.GroupsOn(attrs, nil), projectionGroups(r, attrs, nil); !sameGroups(got, want) {
				t.Fatalf("trial %d attrs %v full scan: %v != %v", trial, attrs, got, want)
			}
			if got, want := r.GroupsOn(attrs, idx), projectionGroups(r, attrs, idx); !sameGroups(got, want) {
				t.Fatalf("trial %d attrs %v subset: %v != %v", trial, attrs, got, want)
			}
		}
	}
}

// TestGroupsNaNPolicy pins the documented NaN semantics: NaN ≠ NaN under
// EqualValues, so every NaN row forms its own group — where the old
// ProjectionKey encoding collapsed them into one.
func TestGroupsNaNPolicy(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "v", Type: Float})).MustInsert(
		Row{1.0}, Row{math.NaN()}, Row{1.0}, Row{math.NaN()}, Row{2.0},
	)
	groups := r.Groups([]string{"v"})
	if len(groups) != 4 {
		t.Fatalf("want 4 groups ({0,2} {1} {3} {4}), got %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("equal non-NaN values must share a group: %v", groups)
	}
	for _, g := range groups[1:3] {
		if len(g) != 1 {
			t.Errorf("each NaN row must be its own group: %v", groups)
		}
	}
}

// TestGroupsForeignAttr: grouping on an attribute outside the schema
// falls back to the ValueKey dictionary — all rows lack it and share one
// group, matching EqualOn's absent-on-both-sides agreement.
func TestGroupsForeignAttr(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "v", Type: Int})).MustInsert(
		Row{int64(1)}, Row{int64(2)}, Row{int64(1)},
	)
	groups := r.Groups([]string{"nope"})
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("foreign attribute must yield one group of all rows: %v", groups)
	}
	// Mixed known/unknown attributes still partition by the known one.
	groups = r.Groups([]string{"nope", "v"})
	if len(groups) != 2 {
		t.Fatalf("mixed attrs must group by the known column: %v", groups)
	}
}

// TestGroupKeysEmptyAttrs: an empty grouping list puts every row in one
// class (code 0), the degenerate σ[P groupby ∅] = σ[P].
func TestGroupKeysEmptyAttrs(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "v", Type: Int})).MustInsert(Row{int64(1)}, Row{int64(2)})
	groups := r.Groups(nil)
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("empty attrs must yield one group: %v", groups)
	}
}
