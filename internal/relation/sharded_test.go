package relation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pref"
)

func shardedTestSchema() *Schema {
	return MustSchema(
		Column{Name: "oid", Type: Int},
		Column{Name: "price", Type: Float},
		Column{Name: "color", Type: String},
	)
}

func shardedTestRelation(n int, seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	colors := []string{"red", "blue", "green", "black"}
	r := New("car", shardedTestSchema())
	for i := 0; i < n; i++ {
		var color pref.Value
		if rng.Intn(10) > 0 {
			color = colors[rng.Intn(len(colors))]
		}
		r.MustInsert(Row{i, math.Floor(rng.Float64()*1000) / 10, color})
	}
	return r
}

// TestGlobalIDRoundTrip pins the (shard, local) packing.
func TestGlobalIDRoundTrip(t *testing.T) {
	cases := [][2]int{{0, 0}, {0, 5}, {3, 0}, {7, 1 << 20}, {maxShards - 1, 123}}
	for _, c := range cases {
		gid := GlobalID(c[0], c[1])
		shard, local := SplitGlobalID(gid)
		if shard != c[0] || local != c[1] {
			t.Fatalf("round trip (%d,%d) → %d → (%d,%d)", c[0], c[1], gid, shard, local)
		}
	}
}

// TestShardRelationPartition: every row lands in exactly one shard, on the
// shard the partitioner routes it to, and the union is the source multiset.
func TestShardRelationPartition(t *testing.T) {
	flat := shardedTestRelation(500, 1)
	for _, part := range []Partitioner{ByHash("color"), ByHash("oid"), ByRange("price", RangeBounds(flat, "price", 4)...)} {
		s, err := ShardRelation(flat, 4, part)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != flat.Len() {
			t.Fatalf("%s: sharded Len %d, want %d", part, s.Len(), flat.Len())
		}
		seen := make(map[int]bool, flat.Len())
		for i, sh := range s.Shards() {
			for j := 0; j < sh.Len(); j++ {
				row := sh.Row(j)
				if got := s.ShardOf(row); got != i {
					t.Fatalf("%s: row %v stored in shard %d but routes to %d", part, row, i, got)
				}
				oid := row[0].(int)
				if seen[oid] {
					t.Fatalf("%s: row oid=%d present twice", part, oid)
				}
				seen[oid] = true
			}
		}
		if len(seen) != flat.Len() {
			t.Fatalf("%s: %d distinct rows, want %d", part, len(seen), flat.Len())
		}
	}
}

// TestShardedInsertRoutes: Insert routes by the partitioner and the global
// id addresses the inserted row.
func TestShardedInsertRoutes(t *testing.T) {
	s, err := NewSharded("car", shardedTestSchema(), 3, ByHash("color"))
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{{1, 10.0, "red"}, {2, 20.0, "blue"}, {3, 30.0, nil}, {4, 40.0, "red"}}
	for _, row := range rows {
		want := s.ShardOf(row)
		before := s.Shard(want).Len()
		if err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
		gid := GlobalID(want, before)
		got := s.Row(gid)
		if got[0] != row[0] {
			t.Fatalf("global id %d reads oid %v, want %v", gid, got[0], row[0])
		}
	}
	if s.Len() != len(rows) {
		t.Fatalf("Len %d after %d inserts", s.Len(), len(rows))
	}
	// Same color ⇒ same shard, always.
	if s.ShardOf(rows[0]) != s.ShardOf(rows[3]) {
		t.Fatal("hash partitioner must route equal keys to one shard")
	}
	if err := s.Insert(Row{"bad", 1.0, "red"}); err == nil {
		t.Fatal("Insert must type-check against the schema")
	}
}

// TestRangePartitioner pins the bound semantics: shard i holds values
// below bounds[i], the last shard the rest, NULL and NaN to shard 0.
func TestRangePartitioner(t *testing.T) {
	schema := shardedTestSchema()
	part := ByRange("price", 10, 20)
	cases := []struct {
		price pref.Value
		want  int
	}{
		{5.0, 0}, {9.99, 0}, {10.0, 1}, {15.0, 1}, {20.0, 2}, {1e9, 2},
		{nil, 0}, {math.NaN(), 0},
	}
	for _, c := range cases {
		got := part.ShardOf(Row{1, c.price, "red"}, schema, 3)
		if got != c.want {
			t.Errorf("price %v → shard %d, want %d", c.price, got, c.want)
		}
	}
	// More shards than bounds+1 must still stay in range.
	if got := part.ShardOf(Row{1, 99.0, "x"}, schema, 2); got > 1 {
		t.Fatalf("shard %d out of range for n=2", got)
	}
}

// TestRangePartitionerShardCountValidated: a bound list that cannot
// address the shard count — in particular the empty list RangeBounds
// yields for non-numeric attributes — must fail loudly at table
// construction instead of silently routing every row to shard 0.
func TestRangePartitionerShardCountValidated(t *testing.T) {
	flat := shardedTestRelation(50, 19)
	if _, err := ShardRelation(flat, 4, ByRange("color", RangeBounds(flat, "color", 4)...)); err == nil {
		t.Fatal("zero range bounds over 4 shards must be rejected")
	}
	if _, err := NewSharded("t", flat.Schema(), 3, ByRange("price", 10)); err == nil {
		t.Fatal("1 bound for 3 shards must be rejected")
	}
	s, err := ShardRelation(flat, 2, ByRange("price", 50))
	if err != nil {
		t.Fatalf("matching bounds must be accepted: %v", err)
	}
	if _, err := s.Reshard(5, ByRange("price", 10, 20, 30)); err == nil {
		t.Fatal("Reshard must validate the new partitioner's bound count")
	}
}

// TestReshard redistributes the full multiset, returns the displaced
// shards, and re-addresses rows under the new partitioner.
func TestReshard(t *testing.T) {
	flat := shardedTestRelation(300, 7)
	s, err := ShardRelation(flat, 2, ByHash("oid"))
	if err != nil {
		t.Fatal(err)
	}
	oldShards := s.Shards()
	displaced, err := s.Reshard(5, ByHash("color"))
	if err != nil {
		t.Fatal(err)
	}
	if len(displaced) != 2 || displaced[0] != oldShards[0] {
		t.Fatal("Reshard must return the displaced shard relations")
	}
	if s.NumShards() != 5 || s.Len() != flat.Len() {
		t.Fatalf("after Reshard: %d shards, %d rows", s.NumShards(), s.Len())
	}
	var got []int
	for _, sh := range s.Shards() {
		for j := 0; j < sh.Len(); j++ {
			got = append(got, sh.Row(j)[0].(int))
		}
	}
	sort.Ints(got)
	for i, oid := range got {
		if oid != i {
			t.Fatalf("row multiset changed: position %d holds oid %d", i, oid)
		}
	}
}

// TestShardedPickFlatten: Pick materializes global ids in order as an
// ephemeral relation; Flatten is the shard-major union.
func TestShardedPickFlatten(t *testing.T) {
	flat := shardedTestRelation(50, 3)
	s, err := ShardRelation(flat, 3, ByHash("oid"))
	if err != nil {
		t.Fatal(err)
	}
	var gids []int
	for i, sh := range s.Shards() {
		if sh.Len() > 0 {
			gids = append(gids, GlobalID(i, sh.Len()-1))
		}
	}
	picked := s.Pick(gids)
	if !picked.Ephemeral() {
		t.Fatal("Pick result must be ephemeral (derived)")
	}
	if picked.Len() != len(gids) {
		t.Fatalf("picked %d rows, want %d", picked.Len(), len(gids))
	}
	for k, gid := range gids {
		if picked.Row(k)[0] != s.Row(gid)[0] {
			t.Fatalf("Pick order mismatch at %d", k)
		}
	}
	flattened := s.Flatten()
	if !flattened.Ephemeral() || flattened.Len() != flat.Len() {
		t.Fatal("Flatten must be an ephemeral union of all shards")
	}
}

// TestRangeBounds: equi-depth bounds split a uniform column into shards
// of comparable size.
func TestRangeBounds(t *testing.T) {
	flat := shardedTestRelation(1000, 11)
	bounds := RangeBounds(flat, "price", 4)
	if len(bounds) != 3 {
		t.Fatalf("want 3 bounds, got %v", bounds)
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("bounds must ascend: %v", bounds)
	}
	s, err := ShardRelation(flat, 4, ByRange("price", bounds...))
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range s.Shards() {
		if sh.Len() < flat.Len()/8 {
			t.Errorf("shard %d badly unbalanced: %d of %d rows", i, sh.Len(), flat.Len())
		}
	}
	if RangeBounds(flat, "color", 4) != nil {
		t.Fatal("RangeBounds over a string column must report nil")
	}
}

// TestShardVersionsIndependent: mutating one shard must not disturb the
// versions (and therefore the cached bound forms) of its siblings.
func TestShardVersionsIndependent(t *testing.T) {
	flat := shardedTestRelation(100, 5)
	s, err := ShardRelation(flat, 4, ByHash("oid"))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]uint64, s.NumShards())
	for i, sh := range s.Shards() {
		before[i] = sh.Version()
	}
	row := Row{10001, 3.0, "red"}
	target := s.ShardOf(row)
	if err := s.Insert(row); err != nil {
		t.Fatal(err)
	}
	for i, sh := range s.Shards() {
		bumped := sh.Version() != before[i]
		if i == target && !bumped {
			t.Fatal("target shard version must bump on Insert")
		}
		if i != target && bumped {
			t.Fatalf("shard %d version bumped without a mutation", i)
		}
	}
}

// TestShardedStringRenders smoke-tests the table rendering.
func TestShardedStringRenders(t *testing.T) {
	s, _ := NewSharded("t", shardedTestSchema(), 2, ByHash("oid"))
	s.MustInsert(Row{1, 2.5, "red"})
	if s.String() == "" {
		t.Fatal("String must render")
	}
	_ = fmt.Sprintf("%v", s)
}
