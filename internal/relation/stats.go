package relation

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/pref"
)

// ColStats summarizes one column for the cost-based planner: domain width
// (distinct count), numeric range, and physical order. Sortedness matters
// because sort-filter-skyline can skip its presort when the relation is
// already ordered by a compatible key.
type ColStats struct {
	Name     string
	Type     Type
	Distinct int // distinct values among the sampled rows
	// Numeric range; valid only when HasRange is true (numeric column with
	// at least one non-nil value).
	Min, Max float64
	HasRange bool
	// Physical order of the column over the full relation. A column of
	// fewer than two rows is trivially sorted both ways.
	SortedAsc, SortedDesc bool
}

// Stats are relation-level statistics driving cost-based plan selection:
// cardinality, per-column summaries, and the mean pairwise correlation of
// the numeric columns. Correlation is the single most important input to
// skyline cardinality estimation — anti-correlated data inflates BMO
// results by orders of magnitude (observed since [BKS01]) — so the planner
// reads it to scale its result-size estimate.
type Stats struct {
	Card    int // card(R)
	Sampled int // rows examined for the sampled statistics (distinct, correlation)
	Cols    []ColStats
	// Corr is the mean pairwise Pearson correlation over numeric columns,
	// in [-1, 1]; valid only when HasCorr is true (≥ 2 numeric columns and
	// ≥ 2 sampled rows).
	Corr    float64
	HasCorr bool

	byName map[string]int
}

// Col returns the statistics of the named column.
func (s *Stats) Col(name string) (ColStats, bool) {
	i, ok := s.byName[name]
	if !ok {
		return ColStats{}, false
	}
	return s.Cols[i], true
}

// String renders a one-line summary for plan explanations.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "card=%d sampled=%d", s.Card, s.Sampled)
	if s.HasCorr {
		fmt.Fprintf(&b, " corr=%+.2f", s.Corr)
	}
	for _, c := range s.Cols {
		fmt.Fprintf(&b, " %s(distinct=%d", c.Name, c.Distinct)
		if c.HasRange {
			fmt.Fprintf(&b, " range=[%g,%g]", c.Min, c.Max)
		}
		switch {
		case c.SortedAsc && c.SortedDesc:
			b.WriteString(" const")
		case c.SortedAsc:
			b.WriteString(" asc")
		case c.SortedDesc:
			b.WriteString(" desc")
		}
		b.WriteString(")")
	}
	return b.String()
}

// Analyze computes full-scan statistics for R.
func Analyze(r *Relation) *Stats { return AnalyzeSample(r, r.Len()) }

// AnalyzeSample computes statistics with the expensive parts (distinct
// counting, correlation) restricted to an evenly spaced sample of at most
// sample rows. Min/max and sortedness always use the full scan — they are
// O(n) with trivial constants, and sortedness is meaningless on a sample.
// A non-positive sample analyzes every row.
//
// Numeric columns are analyzed through their typed arrays (FloatColumn):
// on a paged relation those are the mmap'd segment vectors, so analysis
// never decodes row pages for them. Only columns without a float image
// (STRING, BOOL, TIME) take the row path, and that path decodes each row
// once for all of them together — the per-(row, column) decode storm the
// naive column-major scan would cost on disk-backed tables.
func AnalyzeSample(r *Relation, sample int) *Stats {
	n := r.Len()
	if sample <= 0 || sample > n {
		sample = n
	}
	s := &Stats{Card: n, byName: make(map[string]int, r.Schema().Len())}
	stride := 1
	if sample > 0 {
		stride = (n + sample - 1) / sample
	}

	cols := r.Schema().Columns()
	stats := make([]ColStats, len(cols))
	numericIdx := []int{}
	var vecs [][]float64 // typed arrays of the numeric columns, for corr
	var masks [][]bool
	var rowCols []int // columns only the row pass can serve
	for ci, col := range cols {
		stats[ci] = ColStats{
			Name:      col.Name,
			Type:      col.Type,
			SortedAsc: true, SortedDesc: true,
		}
		if col.Type == Int || col.Type == Float {
			numericIdx = append(numericIdx, ci)
			if vals, mask, ok := r.FloatColumn(col.Name); ok {
				vecs, masks = append(vecs, vals), append(masks, mask)
				analyzeFloats(&stats[ci], vals, mask, stride)
				continue
			}
			vecs, masks = append(vecs, nil), append(masks, nil)
		}
		rowCols = append(rowCols, ci)
	}

	if len(rowCols) > 0 {
		analyzeRows(r, rowCols, stats, stride)
	}
	s.Cols = stats
	for ci, col := range cols {
		s.byName[col.Name] = ci
	}
	s.Sampled = 0
	for i := 0; i < n; i += stride {
		s.Sampled++
	}
	s.Corr, s.HasCorr = meanPairwiseCorr(r, numericIdx, vecs, masks, stride)
	return s
}

// analyzeFloats fills one column's statistics from its typed array:
// full-scan min/max and physical order over the on-scale values, distinct
// counting on the stride sample. NaN compares unordered against
// everything (matching pref.CompareValues), so it never breaks
// sortedness; off-scale entries are NULLs for INT/FLOAT columns and form
// one distinct class.
func analyzeFloats(cs *ColStats, vals []float64, mask []bool, stride int) {
	distinct := make(map[float64]struct{})
	sawNull := false
	for i, v := range vals {
		if mask[i] {
			if !cs.HasRange || v < cs.Min {
				cs.Min = v
			}
			if !cs.HasRange || v > cs.Max {
				cs.Max = v
			}
			cs.HasRange = true
		}
		if i%stride == 0 {
			if mask[i] {
				distinct[v] = struct{}{}
			} else {
				sawNull = true
			}
		}
		if i > 0 && (cs.SortedAsc || cs.SortedDesc) && mask[i] && mask[i-1] {
			if vals[i-1] > v {
				cs.SortedAsc = false
			}
			if vals[i-1] < v {
				cs.SortedDesc = false
			}
		}
	}
	cs.Distinct = len(distinct)
	if sawNull {
		cs.Distinct++
	}
}

// analyzeRows covers the columns without a typed array in one row-major
// pass: each row is fetched once — on a paged relation one page decode
// serves every remaining column of the row.
func analyzeRows(r *Relation, rowCols []int, stats []ColStats, stride int) {
	n := r.Len()
	distinct := make([]map[pref.Value]struct{}, len(rowCols))
	prev := make([]pref.Value, len(rowCols))
	for k := range distinct {
		distinct[k] = make(map[pref.Value]struct{})
	}
	for i := 0; i < n; i++ {
		row := r.Row(i)
		for k, ci := range rowCols {
			v := row[ci]
			cs := &stats[ci]
			if f, ok := pref.Numeric(v); ok {
				if !cs.HasRange || f < cs.Min {
					cs.Min = f
				}
				if !cs.HasRange || f > cs.Max {
					cs.Max = f
				}
				cs.HasRange = true
			}
			if i%stride == 0 {
				distinct[k][v] = struct{}{}
			}
			if i > 0 && (cs.SortedAsc || cs.SortedDesc) {
				if c, ok := pref.CompareValues(prev[k], v); ok {
					if c > 0 {
						cs.SortedAsc = false
					}
					if c < 0 {
						cs.SortedDesc = false
					}
				}
			}
			prev[k] = v
		}
	}
	for k, ci := range rowCols {
		stats[ci].Distinct = len(distinct[k])
	}
}

// meanPairwiseCorr computes the mean Pearson correlation over all pairs of
// the given numeric columns, on every stride-th row. Columns with a typed
// array are read from it (vecs/masks parallel cols); a nil vec falls back
// to the row interface.
func meanPairwiseCorr(r *Relation, cols []int, vecs [][]float64, masks [][]bool, stride int) (float64, bool) {
	if len(cols) < 2 {
		return 0, false
	}
	var rows [][]float64
	for i := 0; i < r.Len(); i += stride {
		vec := make([]float64, len(cols))
		ok := true
		var row Row
		for k, ci := range cols {
			var f float64
			var isNum bool
			if vecs[k] != nil {
				f, isNum = vecs[k][i], masks[k][i]
			} else {
				if row == nil {
					row = r.Row(i)
				}
				f, isNum = pref.Numeric(row[ci])
			}
			if !isNum {
				ok = false
				break
			}
			vec[k] = f
		}
		if ok {
			rows = append(rows, vec)
		}
	}
	if len(rows) < 2 {
		return 0, false
	}
	mean := make([]float64, len(cols))
	for _, vec := range rows {
		for k, v := range vec {
			mean[k] += v
		}
	}
	for k := range mean {
		mean[k] /= float64(len(rows))
	}
	variance := make([]float64, len(cols))
	for _, vec := range rows {
		for k, v := range vec {
			d := v - mean[k]
			variance[k] += d * d
		}
	}
	var sum float64
	pairs := 0
	for a := 0; a < len(cols); a++ {
		for b := a + 1; b < len(cols); b++ {
			if variance[a] == 0 || variance[b] == 0 {
				continue // constant column: correlation undefined, treat as 0
			}
			var cov float64
			for _, vec := range rows {
				cov += (vec[a] - mean[a]) * (vec[b] - mean[b])
			}
			sum += cov / math.Sqrt(variance[a]*variance[b])
			pairs++
		}
	}
	if pairs == 0 {
		return 0, true // all-constant columns: uncorrelated by convention
	}
	return sum / float64(pairs), true
}
