package relation

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/pref"
)

// ColStats summarizes one column for the cost-based planner: domain width
// (distinct count), numeric range, and physical order. Sortedness matters
// because sort-filter-skyline can skip its presort when the relation is
// already ordered by a compatible key.
type ColStats struct {
	Name     string
	Type     Type
	Distinct int // distinct values among the sampled rows
	// Numeric range; valid only when HasRange is true (numeric column with
	// at least one non-nil value).
	Min, Max float64
	HasRange bool
	// Physical order of the column over the full relation. A column of
	// fewer than two rows is trivially sorted both ways.
	SortedAsc, SortedDesc bool
}

// Stats are relation-level statistics driving cost-based plan selection:
// cardinality, per-column summaries, and the mean pairwise correlation of
// the numeric columns. Correlation is the single most important input to
// skyline cardinality estimation — anti-correlated data inflates BMO
// results by orders of magnitude (observed since [BKS01]) — so the planner
// reads it to scale its result-size estimate.
type Stats struct {
	Card    int // card(R)
	Sampled int // rows examined for the sampled statistics (distinct, correlation)
	Cols    []ColStats
	// Corr is the mean pairwise Pearson correlation over numeric columns,
	// in [-1, 1]; valid only when HasCorr is true (≥ 2 numeric columns and
	// ≥ 2 sampled rows).
	Corr    float64
	HasCorr bool

	byName map[string]int
}

// Col returns the statistics of the named column.
func (s *Stats) Col(name string) (ColStats, bool) {
	i, ok := s.byName[name]
	if !ok {
		return ColStats{}, false
	}
	return s.Cols[i], true
}

// String renders a one-line summary for plan explanations.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "card=%d sampled=%d", s.Card, s.Sampled)
	if s.HasCorr {
		fmt.Fprintf(&b, " corr=%+.2f", s.Corr)
	}
	for _, c := range s.Cols {
		fmt.Fprintf(&b, " %s(distinct=%d", c.Name, c.Distinct)
		if c.HasRange {
			fmt.Fprintf(&b, " range=[%g,%g]", c.Min, c.Max)
		}
		switch {
		case c.SortedAsc && c.SortedDesc:
			b.WriteString(" const")
		case c.SortedAsc:
			b.WriteString(" asc")
		case c.SortedDesc:
			b.WriteString(" desc")
		}
		b.WriteString(")")
	}
	return b.String()
}

// Analyze computes full-scan statistics for R.
func Analyze(r *Relation) *Stats { return AnalyzeSample(r, r.Len()) }

// AnalyzeSample computes statistics with the expensive parts (distinct
// counting, correlation) restricted to an evenly spaced sample of at most
// sample rows. Min/max and sortedness always use the full scan — they are
// O(n) with trivial constants, and sortedness is meaningless on a sample.
// A non-positive sample analyzes every row.
func AnalyzeSample(r *Relation, sample int) *Stats {
	n := r.Len()
	if sample <= 0 || sample > n {
		sample = n
	}
	s := &Stats{Card: n, byName: make(map[string]int, r.Schema().Len())}
	stride := 1
	if sample > 0 {
		stride = (n + sample - 1) / sample
	}

	numericIdx := []int{}
	for ci, col := range r.Schema().Columns() {
		cs := ColStats{
			Name:      col.Name,
			Type:      col.Type,
			SortedAsc: true, SortedDesc: true,
		}
		distinct := make(map[pref.Value]struct{})
		var prev pref.Value
		havePrev := false
		for i := 0; i < n; i++ {
			v := r.Row(i)[ci]
			if f, ok := pref.Numeric(v); ok {
				if !cs.HasRange || f < cs.Min {
					cs.Min = f
				}
				if !cs.HasRange || f > cs.Max {
					cs.Max = f
				}
				cs.HasRange = true
			}
			if i%stride == 0 {
				distinct[v] = struct{}{}
			}
			if havePrev && (cs.SortedAsc || cs.SortedDesc) {
				if c, ok := pref.CompareValues(prev, v); ok {
					if c > 0 {
						cs.SortedAsc = false
					}
					if c < 0 {
						cs.SortedDesc = false
					}
				}
			}
			prev, havePrev = v, true
		}
		cs.Distinct = len(distinct)
		s.byName[col.Name] = len(s.Cols)
		s.Cols = append(s.Cols, cs)
		if col.Type == Int || col.Type == Float {
			numericIdx = append(numericIdx, ci)
		}
	}
	s.Sampled = 0
	for i := 0; i < n; i += stride {
		s.Sampled++
	}
	s.Corr, s.HasCorr = meanPairwiseCorr(r, numericIdx, stride)
	return s
}

// meanPairwiseCorr computes the mean Pearson correlation over all pairs of
// the given numeric columns, on every stride-th row.
func meanPairwiseCorr(r *Relation, cols []int, stride int) (float64, bool) {
	if len(cols) < 2 {
		return 0, false
	}
	var rows [][]float64
	for i := 0; i < r.Len(); i += stride {
		vec := make([]float64, len(cols))
		ok := true
		for k, ci := range cols {
			f, isNum := pref.Numeric(r.Row(i)[ci])
			if !isNum {
				ok = false
				break
			}
			vec[k] = f
		}
		if ok {
			rows = append(rows, vec)
		}
	}
	if len(rows) < 2 {
		return 0, false
	}
	mean := make([]float64, len(cols))
	for _, vec := range rows {
		for k, v := range vec {
			mean[k] += v
		}
	}
	for k := range mean {
		mean[k] /= float64(len(rows))
	}
	variance := make([]float64, len(cols))
	for _, vec := range rows {
		for k, v := range vec {
			d := v - mean[k]
			variance[k] += d * d
		}
	}
	var sum float64
	pairs := 0
	for a := 0; a < len(cols); a++ {
		for b := a + 1; b < len(cols); b++ {
			if variance[a] == 0 || variance[b] == 0 {
				continue // constant column: correlation undefined, treat as 0
			}
			var cov float64
			for _, vec := range rows {
				cov += (vec[a] - mean[a]) * (vec[b] - mean[b])
			}
			sum += cov / math.Sqrt(variance[a]*variance[b])
			pairs++
		}
	}
	if pairs == 0 {
		return 0, true // all-constant columns: uncorrelated by convention
	}
	return sum / float64(pairs), true
}
