package relation

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/pref"
)

func randRow(rng *rand.Rand) Row {
	var num pref.Value
	switch rng.Intn(8) {
	case 0:
		num = nil
	case 1:
		num = math.Inf(1)
	case 2:
		num = math.NaN()
	default:
		num = float64(rng.Intn(5))
	}
	var str pref.Value
	if rng.Intn(8) != 0 {
		str = string(rune('a' + rng.Intn(4)))
	}
	var ts pref.Value
	if rng.Intn(8) != 0 {
		ts = time.Unix(int64(rng.Intn(4)), int64(rng.Intn(2))*500_000_000)
	}
	return Row{num, str, ts}
}

func randWhereRelation(rng *rand.Rand, n int) *Relation {
	r := New("T", MustSchema(
		Column{Name: "num", Type: Float},
		Column{Name: "str", Type: String},
		Column{Name: "ts", Type: Time},
	))
	for i := 0; i < n; i++ {
		r.MustInsert(randRow(rng))
	}
	return r
}

// TestWhereAgreesWithSelect is the cross-evaluation property of the
// compiled hard-selection path over real relations (vector and dictionary
// bindings included): Where must return exactly the rows the interpreted
// Select keeps, for every predicate shape, including NaN literals, NULLs,
// and sub-second time instants the float image of a TIME column would
// truncate.
func TestWhereAgreesWithSelect(t *testing.T) {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel := randWhereRelation(rng, 1+rng.Intn(40))
		preds := []filter.Pred{
			&filter.Cmp{Attr: "num", Op: ops[rng.Intn(6)], Value: float64(rng.Intn(5))},
			&filter.Cmp{Attr: "num", Op: ops[rng.Intn(6)], Value: math.NaN()},
			&filter.Cmp{Attr: "str", Op: ops[rng.Intn(6)], Value: "b"},
			&filter.Cmp{Attr: "ts", Op: ops[rng.Intn(6)], Value: time.Unix(2, 500_000_000)},
			&filter.In{Attr: "str", Set: pref.NewValueSet("a", "c"), Negate: rng.Intn(2) == 0},
			&filter.Like{Attr: "str", Pattern: "a%"},
			&filter.IsNull{Attr: "num", Negate: rng.Intn(2) == 0},
			&filter.And{
				L: &filter.Cmp{Attr: "num", Op: ">=", Value: 1.0},
				R: &filter.Not{E: &filter.Cmp{Attr: "str", Op: "=", Value: "d"}},
			},
		}
		for _, p := range preds {
			got := rel.Where(p)
			want := rel.Select(p.Eval)
			if got.Len() != want.Len() {
				t.Fatalf("seed %d, %s: Where has %d rows, Select %d\n%s", seed, p, got.Len(), want.Len(), rel)
			}
			for i := 0; i < got.Len(); i++ {
				for j, v := range got.Row(i) {
					if !pref.EqualValues(v, want.Row(i)[j]) && !bothNaN(v, want.Row(i)[j]) {
						t.Fatalf("seed %d, %s: row %d differs: %v vs %v", seed, p, i, got.Row(i), want.Row(i))
					}
				}
			}
		}
	}
}

func bothNaN(a, b pref.Value) bool {
	na, aok := pref.Numeric(a)
	nb, bok := pref.Numeric(b)
	return aok && bok && math.IsNaN(na) && math.IsNaN(nb)
}

// TestWhereBindingClasses pins the binding classification: numeric
// comparisons vectorize, discrete single-attribute conditions dictionary-
// code, and the whole tree stays off the row-fallback path.
func TestWhereBindingClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := randWhereRelation(rng, 30)
	cd := filter.Compile(&filter.And{
		L: &filter.Cmp{Attr: "num", Op: "<", Value: 3.0},
		R: &filter.In{Attr: "str", Set: pref.NewValueSet("a", "b")},
	}, rel)
	vector, dict, row := cd.BindClasses()
	if vector != 1 || dict != 1 || row != 0 {
		t.Fatalf("binding classes = (%d, %d, %d), want (1, 1, 0)", vector, dict, row)
	}
	if !cd.Vectorized() || cd.Mode() != "vectorized" {
		t.Fatal("tree must classify vectorized")
	}
	// TIME comparisons must NOT take the float fast path (seconds-truncated
	// image); they dictionary-code instead.
	cd = filter.Compile(&filter.Cmp{Attr: "ts", Op: "=", Value: time.Unix(2, 500_000_000)}, rel)
	vector, dict, _ = cd.BindClasses()
	if vector != 0 || dict != 1 {
		t.Fatalf("TIME equality bound (vector=%d, dict=%d), want dictionary", vector, dict)
	}
}

// TestVersionCounter pins the mutation counter: Insert and SortBy bump it,
// reads do not.
func TestVersionCounter(t *testing.T) {
	rel := New("V", MustSchema(Column{Name: "a", Type: Int}))
	v0 := rel.Version()
	rel.MustInsert(Row{int64(2)}, Row{int64(1)})
	if rel.Version() != v0+2 {
		t.Fatalf("two inserts: version %d, want %d", rel.Version(), v0+2)
	}
	rel.FloatColumn("a")
	rel.EqColumn("a")
	if rel.Version() != v0+2 {
		t.Fatal("column reads must not bump the version")
	}
	rel.SortBy(func(a, b pref.Tuple) bool {
		av, _ := a.Get("a")
		bv, _ := b.Get("a")
		c, _ := pref.CompareValues(av, bv)
		return c < 0
	})
	if rel.Version() != v0+3 {
		t.Fatalf("SortBy must bump the version, got %d", rel.Version())
	}
}

// TestEphemeralSelectionBypassesCache: Where against a Pick result (a
// per-query intermediate) compiles fresh without populating the selection
// cache.
func TestEphemeralSelectionBypassesCache(t *testing.T) {
	filter.ResetCache()
	defer filter.ResetCache()
	rng := rand.New(rand.NewSource(2))
	rel := randWhereRelation(rng, 20)
	sub := rel.Pick([]int{0, 1, 2, 3, 4, 5})
	pred := &filter.Cmp{Attr: "num", Op: ">=", Value: 1.0}
	got := sub.Where(pred)
	want := sub.Select(pred.Eval)
	if got.Len() != want.Len() {
		t.Fatalf("ephemeral Where = %d rows, Select = %d", got.Len(), want.Len())
	}
	if h, m := filter.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("ephemeral selection must bypass the cache: hits=%d misses=%d", h, m)
	}
	if filter.CacheContains(pred, sub) {
		t.Fatal("ephemeral source must not populate the selection cache")
	}
}

// TestWhereIndicesIsCallerOwned: mutating the returned slice must not
// corrupt the cached bound form a later identical query reuses.
func TestWhereIndicesIsCallerOwned(t *testing.T) {
	filter.ResetCache()
	defer filter.ResetCache()
	rel := New("O", MustSchema(Column{Name: "num", Type: Float})).MustInsert(
		Row{0.0}, Row{1.0}, Row{2.0}, Row{3.0},
	)
	pred := &filter.Cmp{Attr: "num", Op: ">=", Value: 2.0}
	first := rel.WhereIndices(pred)
	first[0] = 0 // caller abuse
	second := rel.WhereIndices(pred)
	if len(second) != 2 || second[0] != 2 || second[1] != 3 {
		t.Fatalf("cached selection corrupted by caller mutation: %v", second)
	}
}
