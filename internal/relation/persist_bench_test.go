package relation_test

// The steady-state persistence benchmarks: the same compiled BMO query
// over the same rows, once against the in-memory relation and once
// against its paged twin (segments + buffer pool), plus the write-side
// costs (WAL append, checkpoint). The mem-vs-paged pair is the
// acceptance measurement for the disk tier — warm paged evaluation must
// stay within 1.5x of the in-memory hot path, because the columnar
// accelerators serve reads from the same flat float/mask slices in both
// cases (mmap'd in the paged one).

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/pref"
	"repro/internal/relation"
	"repro/internal/workload"
)

// pagedTwin imports rel into a fresh store and returns the paged
// relation serving the same rows from segment files.
func pagedTwin(b *testing.B, rel *relation.Relation, pool int64) (*relation.Store, *relation.Relation) {
	b.Helper()
	st, err := relation.OpenStore(b.TempDir(), relation.StoreOptions{PoolBytes: pool})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := st.ImportTable(rel)
	if err != nil {
		st.Close()
		b.Fatal(err)
	}
	return st, tbl.(*relation.Relation)
}

// BenchmarkPagedBMO is the headline mem-vs-paged pair: a compiled
// Pareto skyline (price LOWEST x horsepower HIGHEST x mileage LOWEST)
// over the synthetic car workload, warm (first run outside the timer
// faults the pages in and fills the compile cache). The pool is sized
// above the table, so the paged leg measures the steady state a hot
// working set sees, not eviction churn.
func BenchmarkPagedBMO(b *testing.B) {
	const n = 20000
	mem := workload.Cars(n, 7)
	mem.Columnarize()
	p := pref.ParetoAll(
		pref.LOWEST("price"), pref.HIGHEST("horsepower"), pref.LOWEST("mileage"))

	st, paged := pagedTwin(b, mem, 64<<20)
	defer st.Close()

	want := engine.BMOIndices(p, mem, engine.Auto)
	if got := engine.BMOIndices(p, paged, engine.Auto); len(got) != len(want) {
		b.Fatalf("paged maxima %d, in-memory %d", len(got), len(want))
	}

	b.Run("mem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine.BMOIndices(p, mem, engine.Auto)
		}
	})
	b.Run("paged", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine.BMOIndices(p, paged, engine.Auto)
		}
	})
}

// BenchmarkPersistInsert measures the write path: one row through the
// WAL (append + CRC frame, no fsync) into the live generation.
func BenchmarkPersistInsert(b *testing.B) {
	st, err := relation.OpenStore(b.TempDir(), relation.StoreOptions{PoolBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	seed := workload.Cars(1, 1)
	tbl, err := st.ImportTable(seed)
	if err != nil {
		b.Fatal(err)
	}
	rel := tbl.(*relation.Relation)
	row := seed.Snapshot().Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rel.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistCheckpoint measures folding a 256-row WAL tail into a
// fresh epoch: segment rewrite, meta swap, stale-file cleanup.
func BenchmarkPersistCheckpoint(b *testing.B) {
	st, err := relation.OpenStore(b.TempDir(), relation.StoreOptions{PoolBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	seed := workload.Cars(2000, 3)
	tbl, err := st.ImportTable(seed)
	if err != nil {
		b.Fatal(err)
	}
	rel := tbl.(*relation.Relation)
	row := seed.Snapshot().Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 256; j++ {
			if err := rel.Insert(row); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := st.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
