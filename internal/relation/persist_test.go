package relation

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/pref"
	"repro/internal/relation/store"
)

func persistSchema() *Schema {
	return MustSchema(
		Column{Name: "name", Type: String},
		Column{Name: "price", Type: Int},
		Column{Name: "power", Type: Float},
		Column{Name: "fast", Type: Bool},
		Column{Name: "built", Type: Time},
	)
}

func persistRow(i int) Row {
	var name pref.Value
	if i%7 != 0 {
		name = fmt.Sprintf("car-%d", i%23)
	}
	return Row{
		name,
		int64(20000 + i%500*37),
		float64(90 + i%311),
		i%2 == 0,
		time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour),
	}
}

// encodeRows renders rows through the store codec, the byte-identical
// comparison the crash-recovery contract is stated in.
func encodeRows(t *testing.T, rows []Row) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, r := range rows {
		if buf, err = store.AppendRow(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// reencode normalizes a row through the codec (ints widen to int64,
// times become UTC instants) so expected rows compare equal to
// recovered ones.
func reencode(t *testing.T, row Row) Row {
	t.Helper()
	buf, err := store.AppendRow(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	out, rest, err := store.ReadRow(buf, len(row))
	if err != nil || len(rest) != 0 {
		t.Fatalf("reencode: %v", err)
	}
	return Row(out)
}

func TestPersistRoundTripFlat(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{PoolBytes: 1 << 20, PageBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.CreateTable("car", persistSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	want := make([]Row, n)
	for i := 0; i < n; i++ {
		row := persistRow(i)
		if err := r.Insert(row); err != nil {
			t.Fatal(err)
		}
		want[i] = reencode(t, row)
	}
	wantVersion := r.Version()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, StoreOptions{PoolBytes: 1 << 20, PageBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tb, ok := st2.Table("car")
	if !ok {
		t.Fatal("reopened store lost the table")
	}
	r2 := tb.(*Relation)
	if r2.Len() != n {
		t.Fatalf("recovered %d rows, want %d", r2.Len(), n)
	}
	got := make([]Row, n)
	for i := range got {
		got[i] = r2.Row(i)
	}
	if !reflect.DeepEqual(encodeRows(t, got), encodeRows(t, want)) {
		t.Fatal("recovered rows are not byte-identical to the inserted ones")
	}
	_ = wantVersion // version restarts per process; identity is fresh too
	// The tail is folded: reopening after Close serves from the epoch.
	if g := r2.cur(); g.base == nil || len(g.rows) != 0 {
		t.Fatalf("reopen after Close: base=%v tail=%d, want paged base with empty tail", g.base != nil, len(g.rows))
	}
}

func TestPersistWALRecoveryWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.CreateTable("t", persistSchema())
	if err != nil {
		t.Fatal(err)
	}
	var want []Row
	for i := 0; i < 40; i++ {
		row := persistRow(i)
		if err := r.Insert(row); err != nil {
			t.Fatal(err)
		}
		want = append(want, reencode(t, row))
	}
	// Simulate a crash: no Close, no Checkpoint — reopen from disk.
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := mustTable(t, st2, "t").(*Relation)
	got := r2.Rows()
	if !reflect.DeepEqual(encodeRows(t, got), encodeRows(t, want)) {
		t.Fatalf("WAL replay recovered %d rows, want %d byte-identical", len(got), len(want))
	}
}

func mustTable(t *testing.T, st *Store, name string) Table {
	t.Helper()
	tb, ok := st.Table(name)
	if !ok {
		t.Fatalf("store has no table %q", name)
	}
	return tb
}

// TestPersistCrashTortureMidAppend is the crash-recovery torture of the
// issue: the writer is killed mid-WAL-append (fault-injection at a
// sweep of cut points — inside the header, inside the payload, at
// zero bytes), the store is reopened cold, and the recovered
// generation must byte-identically equal the last durable prefix.
func TestPersistCrashTortureMidAppend(t *testing.T) {
	defer store.ClearWALFaults()
	for _, keep := range []int64{0, 3, 7, 8, 9, 20} {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			dir := t.TempDir()
			st, err := OpenStore(dir, StoreOptions{SyncWAL: true})
			if err != nil {
				t.Fatal(err)
			}
			r, err := st.CreateTable("t", persistSchema())
			if err != nil {
				t.Fatal(err)
			}
			const durable = 25
			want := make([]Row, 0, durable)
			for i := 0; i < durable; i++ {
				row := persistRow(i)
				if err := r.Insert(row); err != nil {
					t.Fatal(err)
				}
				want = append(want, reencode(t, row))
			}
			// Kill the writer mid-append of row #durable.
			store.InstallWALFault(r.persist.wal.Path(), keep)
			if err := r.Insert(persistRow(durable)); err == nil {
				t.Fatal("insert during injected crash: want error")
			}
			// The crashed process is gone; a new one recovers the dir.
			st2, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			r2 := mustTable(t, st2, "t").(*Relation)
			got := r2.Rows()
			if len(got) != durable {
				t.Fatalf("recovered %d rows, want the %d durable ones", len(got), durable)
			}
			if !reflect.DeepEqual(encodeRows(t, got), encodeRows(t, want)) {
				t.Fatal("recovered generation is not byte-identical to the durable prefix")
			}
			// The recovered store keeps working: appends land cleanly.
			if err := r2.Insert(persistRow(durable)); err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
			if r2.Len() != durable+1 {
				t.Fatalf("len after recovery insert: %d", r2.Len())
			}
		})
	}
}

func TestPersistCheckpointFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{PageBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := st.CreateTable("t", persistSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := r.Insert(persistRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	preVersion, preLen := r.Version(), r.Len()
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint must not change logical contents or version (cached
	// bound forms stay keyed correctly), must empty the tail and WAL.
	if r.Version() != preVersion || r.Len() != preLen {
		t.Fatalf("checkpoint changed version/len: %d/%d -> %d/%d", preVersion, preLen, r.Version(), r.Len())
	}
	g := r.cur()
	if g.base == nil || len(g.rows) != 0 {
		t.Fatalf("checkpoint left base=%v tail=%d", g.base != nil, len(g.rows))
	}
	stats := st.Stats()
	if stats.WALBytes() != 0 {
		t.Fatalf("WAL not rotated: %d bytes", stats.WALBytes())
	}
	if stats.SegmentBytes() == 0 {
		t.Fatal("no segment bytes reported after checkpoint")
	}
	// Inserts keep flowing after a checkpoint.
	if err := r.Insert(persistRow(999)); err != nil {
		t.Fatal(err)
	}
	if r.Version() != preVersion+1 || r.Len() != preLen+1 {
		t.Fatalf("post-checkpoint insert: version %d len %d", r.Version(), r.Len())
	}
}

func TestPersistAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{AutoCheckpoint: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := st.CreateTable("t", persistSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 130; i++ {
		if err := r.Insert(persistRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	g := r.cur()
	if g.base == nil {
		t.Fatal("auto checkpoint never fired")
	}
	if len(g.rows) >= 50 {
		t.Fatalf("tail has %d rows despite threshold 50", len(g.rows))
	}
	if r.Len() != 130 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestPersistSortByDurable(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.CreateTable("t", persistSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := r.Insert(persistRow(59 - i)); err != nil {
			t.Fatal(err)
		}
	}
	r.SortBy(func(a, b pref.Tuple) bool {
		av, _ := a.Get("price")
		bv, _ := b.Get("price")
		an, _ := pref.Numeric(av)
		bn, _ := pref.Numeric(bv)
		return an < bn
	})
	want := encodeRows(t, r.Rows())
	st.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := mustTable(t, st2, "t").(*Relation)
	if !reflect.DeepEqual(encodeRows(t, r2.Rows()), want) {
		t.Fatal("sorted order lost across reopen")
	}
	prices, _, _ := r2.FloatColumn("price")
	for i := 1; i < len(prices); i++ {
		if prices[i] < prices[i-1] {
			t.Fatalf("recovered rows unsorted at %d", i)
		}
	}
}

func TestPersistShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSharded("cars", persistSchema(), 4, ByHash("name"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Insert(persistRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	perShard := make([][]byte, 4)
	for i := 0; i < 4; i++ {
		perShard[i] = encodeRows(t, s.Shard(i).Rows())
	}
	st.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := mustTable(t, st2, "cars").(*Sharded)
	if s2.Len() != n || s2.NumShards() != 4 {
		t.Fatalf("recovered %d rows / %d shards", s2.Len(), s2.NumShards())
	}
	for i := 0; i < 4; i++ {
		if !reflect.DeepEqual(encodeRows(t, s2.Shard(i).Rows()), perShard[i]) {
			t.Fatalf("shard %d differs after reopen", i)
		}
	}
	// The recovered partitioner routes consistently: a new insert lands
	// on the shard its hash addresses, and only there.
	row := persistRow(777)
	target := s2.ShardOf(row)
	before := s2.Shard(target).Len()
	if err := s2.Insert(row); err != nil {
		t.Fatal(err)
	}
	if s2.Shard(target).Len() != before+1 {
		t.Fatal("recovered partitioner misroutes")
	}
}

func TestPersistReshardRefused(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := st.CreateSharded("cars", persistSchema(), 2, ByHash("name"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reshard(4, nil); err == nil {
		t.Fatal("Reshard of a persistent table must refuse")
	}
}

func TestPersistImportAndDrop(t *testing.T) {
	mem := New("car", persistSchema())
	for i := 0; i < 80; i++ {
		mem.MustInsert(persistRow(i))
	}
	memSharded, err := ShardRelation(mem, 3, ByHash("name"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ImportTable(mem); err != nil {
		t.Fatal(err)
	}
	memSharded.name = "car_sharded"
	if _, err := st.ImportTable(memSharded); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	flat := mustTable(t, st2, "car").(*Relation)
	if !reflect.DeepEqual(encodeRows(t, flat.Rows()), encodeRows(t, mem.Rows())) {
		t.Fatal("imported flat table differs after reopen")
	}
	sh := mustTable(t, st2, "car_sharded").(*Sharded)
	if sh.Len() != 80 || sh.NumShards() != 3 {
		t.Fatalf("imported sharded table: %d rows / %d shards", sh.Len(), sh.NumShards())
	}
	if err := st2.Drop("car"); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Table("car"); ok {
		t.Fatal("dropped table still present")
	}
	if _, err := os.Stat(filepath.Join(dir, "car")); !os.IsNotExist(err) {
		t.Fatal("dropped table directory still on disk")
	}
}

// TestPersistColumnsAgree proves the persisted columnar segments serve
// the same FloatColumn/EqColumn semantics as the in-memory build.
func TestPersistColumnsAgree(t *testing.T) {
	for _, noMMap := range []bool{false, true} {
		t.Run(fmt.Sprintf("noMMap=%v", noMMap), func(t *testing.T) {
			mem := New("car", persistSchema())
			for i := 0; i < 150; i++ {
				mem.MustInsert(persistRow(i))
			}
			mem.MustInsert(Row{nil, int64(1), math.NaN(), false, time.Now().UTC()})

			st, err := OpenStore(t.TempDir(), StoreOptions{NoMMap: noMMap})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			tb, err := st.ImportTable(mem)
			if err != nil {
				t.Fatal(err)
			}
			r := tb.(*Relation)
			if g := r.cur(); g.base == nil || len(g.rows) != 0 {
				t.Fatal("import did not produce a pure paged base")
			}
			for _, col := range []string{"price", "power", "built"} {
				wantV, wantOn, ok1 := mem.FloatColumn(col)
				gotV, gotOn, ok2 := r.FloatColumn(col)
				if ok1 != ok2 || len(wantV) != len(gotV) {
					t.Fatalf("%s: ok=%v/%v len=%d/%d", col, ok1, ok2, len(wantV), len(gotV))
				}
				for i := range wantV {
					same := wantV[i] == gotV[i] || (math.IsNaN(wantV[i]) && math.IsNaN(gotV[i]))
					if !same || wantOn[i] != gotOn[i] {
						t.Fatalf("%s[%d]: %v/%v vs %v/%v", col, i, wantV[i], wantOn[i], gotV[i], gotOn[i])
					}
				}
			}
			// Equality codes are opaque; assert the partition they induce
			// matches the in-memory one.
			for _, col := range []string{"name", "price", "fast"} {
				want, _ := mem.EqColumn(col)
				got, _ := r.EqColumn(col)
				if len(want) != len(got) {
					t.Fatalf("%s: eq len %d vs %d", col, len(want), len(got))
				}
				for i := range want {
					for j := i + 1; j < len(want); j++ {
						if (want[i] == want[j]) != (got[i] == got[j]) {
							t.Fatalf("%s: eq partition differs at (%d,%d)", col, i, j)
						}
					}
				}
			}
		})
	}
}

// TestPersistSnapshotPin8Readers is the issue's 8-reader snapshot-pin
// test: readers pin snapshots of a paged shard while a writer appends
// and auto-checkpoints churn the epoch under them. Every pinned
// snapshot must stay a frozen prefix of the insert history — same
// length, same rows, same column arrays — for its whole lifetime.
func TestPersistSnapshotPin8Readers(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{AutoCheckpoint: 40, PageBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := st.CreateTable("t", MustSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "score", Type: Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	seed := 100
	for i := 0; i < seed; i++ {
		r.MustInsert(Row{int64(i), float64(i) * 1.5})
	}

	const readers = 8
	const writes = 400
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				n := snap.Len()
				// Re-read the pinned snapshot several times while the
				// writer churns; it must never move.
				for pass := 0; pass < 3; pass++ {
					if snap.Len() != n {
						errc <- fmt.Errorf("snapshot length moved: %d -> %d", n, snap.Len())
						return
					}
					i := rng.Intn(n)
					id, _ := pref.Numeric(snap.Row(i)[0])
					if int(id) != i {
						errc <- fmt.Errorf("snapshot row %d holds id %d", i, int(id))
						return
					}
					vals, on, ok := snap.FloatColumn("score")
					if !ok || len(vals) != n || !on[i] || vals[i] != float64(i)*1.5 {
						errc <- fmt.Errorf("snapshot column torn at %d (len %d, want %d)", i, len(vals), n)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < writes; i++ {
		if err := r.Insert(Row{int64(seed + i), float64(seed+i) * 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if r.Len() != seed+writes {
		t.Fatalf("final len %d", r.Len())
	}
}

// TestPersistBeyondPoolBudget: a table whose on-disk image is well over
// 10x the configured buffer-pool budget still answers point reads and
// scans correctly, and the pool stays by and large within budget.
func TestPersistBeyondPoolBudget(t *testing.T) {
	const poolBudget = 16 << 10 // 16 KiB pool
	st, err := OpenStore(t.TempDir(), StoreOptions{PoolBytes: poolBudget, PageBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mem := New("big", persistSchema())
	const n = 4000
	for i := 0; i < n; i++ {
		mem.MustInsert(persistRow(i))
	}
	tb, err := st.ImportTable(mem)
	if err != nil {
		t.Fatal(err)
	}
	r := tb.(*Relation)
	stats := st.Stats()
	if stats.SegmentBytes() < 10*poolBudget {
		t.Fatalf("table too small for the test: %d segment bytes vs %d pool", stats.SegmentBytes(), poolBudget)
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 500; k++ {
		i := rng.Intn(n)
		if !reflect.DeepEqual(encodeRows(t, []Row{r.Row(i)}), encodeRows(t, []Row{mem.Row(i)})) {
			t.Fatalf("paged row %d differs from in-memory", i)
		}
	}
	ps := st.Pool().Stats()
	if ps.Evictions == 0 {
		t.Fatalf("beyond-budget reads never evicted: %+v", ps)
	}
	if ps.ResidentBytes > poolBudget+4096 {
		t.Fatalf("pool over budget: %+v", ps)
	}
}
