package relation

import (
	"fmt"
	"time"

	"repro/internal/pref"
)

// Columnar storage mode: alongside the row store, each storage generation
// lazily maintains typed column arrays (float64 vectors with on-scale
// masks for the linearly ordered column types). The compiled preference
// evaluator (pref.Compile) reads them through the pref.FloatColumner
// interface, so materializing a score dimension is a flat vector copy
// instead of a per-row schema lookup, interface unboxing and type switch.
// The arrays are derived data owned by their generation: a row mutation
// (Insert, SortBy) publishes a fresh generation with empty caches, while
// the superseded generation — and every array built from it — stays
// valid for pinned Snapshot readers until the garbage collector retires
// the epoch. FromColumns ingests column-major data and builds both
// representations in one pass.

// floatColumn is one column mapped to the toScale linear scale.
type floatColumn struct {
	vals    []float64
	onScale []bool
}

// FloatColumn returns the named column's values mapped to the linear scale
// preference scoring uses (numerics as themselves, TIME as Unix seconds)
// together with an on-scale mask (false for NULLs and off-scale values).
// It reports ok=false for columns that are not linearly ordered (STRING,
// BOOL) and for unknown names. The returned slices are shared and cached
// on the current generation; callers must not modify them. It implements
// pref.FloatColumner.
func (r *Relation) FloatColumn(name string) (vals []float64, onScale []bool, ok bool) {
	return r.cur().floatColumn(r.schema, name)
}

// floatColumn serves (or builds) the generation's typed array of one
// column.
func (g *generation) floatColumn(schema *Schema, name string) (vals []float64, onScale []bool, ok bool) {
	ci, ok := schema.Index(name)
	if !ok {
		return nil, nil, false
	}
	switch schema.Col(ci).Type {
	case Int, Float, Time:
	default:
		return nil, nil, false
	}
	g.colMu.Lock()
	col, hit := g.floatCols[ci]
	g.colMu.Unlock()
	if !hit {
		// Build outside colMu: the paged paths re-enter the lock via
		// all(), and a racing duplicate build is identical and harmless
		// (the first store wins).
		col = g.deriveFloatColumn(ci)
		g.colMu.Lock()
		if g.floatCols == nil {
			g.floatCols = make(map[int]*floatColumn, schema.Len())
		}
		if exist, ok := g.floatCols[ci]; ok {
			col = exist
		} else {
			g.floatCols[ci] = col
		}
		g.colMu.Unlock()
	}
	return col.vals, col.onScale, true
}

// deriveFloatColumn produces one column's typed array for this
// generation. A paged generation with no in-memory tail serves the
// epoch's mmap'd segment directly — zero copies, the kernel pages the
// bytes in on first touch — which is the property that keeps the
// compiled hot path at in-memory speed on beyond-RAM tables. With a
// tail, the segment prefix is copied once and extended; without a
// base, this is the classic in-memory build.
func (g *generation) deriveFloatColumn(ci int) *floatColumn {
	if g.base == nil {
		return buildFloatColumn(g.rows, ci)
	}
	vals, mask, ok := g.base.floats(ci)
	if !ok {
		return buildFloatColumn(g.all(), ci)
	}
	if len(g.rows) == 0 {
		return &floatColumn{vals: vals, onScale: mask}
	}
	tail := buildFloatColumn(g.rows, ci)
	n := g.nrows()
	col := &floatColumn{vals: make([]float64, n), onScale: make([]bool, n)}
	bn := copy(col.vals, vals)
	copy(col.onScale, mask)
	copy(col.vals[bn:], tail.vals)
	copy(col.onScale[bn:], tail.onScale)
	return col
}

// buildFloatColumn materializes one column: the only place a per-row type
// switch runs, once per (generation, column) instead of per comparison.
func buildFloatColumn(rows []Row, ci int) *floatColumn {
	col := &floatColumn{
		vals:    make([]float64, len(rows)),
		onScale: make([]bool, len(rows)),
	}
	for i, row := range rows {
		v := row[ci]
		if n, ok := pref.Numeric(v); ok {
			col.vals[i], col.onScale[i] = n, true
			continue
		}
		if t, ok := v.(time.Time); ok {
			col.vals[i], col.onScale[i] = float64(t.Unix()), true
		}
	}
	return col
}

// EqColumn returns equality codes for the named column: rows carry equal
// codes exactly when their values are equal in the pref.EqualValues sense
// (numeric cross-type equality, time instants, NULL equal to NULL only).
// Codes start at 1; each NaN is its own class (NaN ≠ NaN). The slice is
// cached on the current generation, so repeated compilations against an
// unchanged relation pay the dictionary pass once. It implements
// pref.EqColumner.
func (r *Relation) EqColumn(name string) ([]uint32, bool) {
	return r.cur().eqColumn(r.schema, name)
}

// eqColumn serves (or builds) the generation's equality codes of one
// column.
func (g *generation) eqColumn(schema *Schema, name string) ([]uint32, bool) {
	ci, ok := schema.Index(name)
	if !ok {
		return nil, false
	}
	g.colMu.Lock()
	codes, hit := g.eqCols[ci]
	g.colMu.Unlock()
	if !hit {
		codes = g.deriveEqColumn(ci)
		g.colMu.Lock()
		if g.eqCols == nil {
			g.eqCols = make(map[int][]uint32, schema.Len())
		}
		if exist, ok := g.eqCols[ci]; ok {
			codes = exist
		} else {
			g.eqCols[ci] = codes
		}
		g.colMu.Unlock()
	}
	return codes, true
}

// deriveEqColumn produces one column's equality codes. A paged
// generation with no tail serves the epoch's persisted dictionary
// image directly (codes are opaque — only equality between them
// matters, so the checkpointed assignment is as good as a fresh one);
// any tail forces a full rebuild over the materialized rows, which the
// next checkpoint amortizes away again.
func (g *generation) deriveEqColumn(ci int) []uint32 {
	if g.base == nil {
		return buildEqColumn(g.rows, ci)
	}
	if codes, ok := g.base.eq(ci); ok && len(g.rows) == 0 {
		return codes
	}
	return buildEqColumn(g.all(), ci)
}

// buildEqColumn dictionary-codes one column with type-native keys — no
// canonical string formatting on the hot path.
func buildEqColumn(rows []Row, ci int) []uint32 {
	codes := make([]uint32, len(rows))
	next := uint32(1)
	nilCode := uint32(0)
	byFloat := make(map[float64]uint32)
	byString := make(map[string]uint32)
	byInstant := make(map[int64]uint32)
	for i, row := range rows {
		v := row[ci]
		if v == nil {
			if nilCode == 0 {
				nilCode = next
				next++
			}
			codes[i] = nilCode
			continue
		}
		if n, ok := pref.Numeric(v); ok {
			code, hit := byFloat[n]
			if !hit { // every NaN misses: each forms its own class
				code = next
				next++
				byFloat[n] = code
			}
			codes[i] = code
			continue
		}
		switch t := v.(type) {
		case string:
			code, hit := byString[t]
			if !hit {
				code = next
				next++
				byString[t] = code
			}
			codes[i] = code
		case bool:
			key := "f"
			if t {
				key = "t"
			}
			code, hit := byString[key]
			if !hit {
				code = next
				next++
				byString[key] = code
			}
			codes[i] = code
		case time.Time:
			key := t.UnixNano()
			code, hit := byInstant[key]
			if !hit {
				code = next
				next++
				byInstant[key] = code
			}
			codes[i] = code
		}
	}
	return codes
}

// NumericColumn is FloatColumn restricted to the genuinely numeric column
// types (INT, FLOAT): ok=false for TIME, whose float image is truncated to
// seconds and would change sub-second comparison results. The compiled
// hard-selection layer binds comparison predicates through it; it
// implements filter.NumericColumner.
func (r *Relation) NumericColumn(name string) (vals []float64, onScale []bool, ok bool) {
	ci, ok := r.schema.Index(name)
	if !ok {
		return nil, nil, false
	}
	switch r.schema.Col(ci).Type {
	case Int, Float:
	default:
		return nil, nil, false
	}
	return r.FloatColumn(name)
}

// Columnarize eagerly builds the typed arrays of every linearly ordered
// column, so later compiled evaluations find them ready. It is optional:
// FloatColumn builds lazily on first use.
func (r *Relation) Columnarize() {
	g := r.cur()
	for _, c := range r.schema.Columns() {
		g.floatColumn(r.schema, c.Name)
	}
}

// FromColumns builds a relation from column-major data: cols[k] holds the
// values of schema column k, all of equal length. Values are type-checked
// as in Insert, and the linearly ordered columns' typed arrays are built
// in the same pass, so the relation is born columnar.
func FromColumns(name string, schema *Schema, cols ...[]pref.Value) (*Relation, error) {
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("relation %s: %d columns for schema arity %d", name, len(cols), schema.Len())
	}
	n := 0
	for k, col := range cols {
		if k == 0 {
			n = len(col)
		} else if len(col) != n {
			return nil, fmt.Errorf("relation %s: column %s has %d rows, want %d", name, schema.Col(k).Name, len(col), n)
		}
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = make(Row, len(cols))
	}
	for k, col := range cols {
		t := schema.Col(k).Type
		for i, v := range col {
			if err := checkValue(t, v); err != nil {
				return nil, fmt.Errorf("relation %s, column %s, row %d: %w", name, schema.Col(k).Name, i, err)
			}
			rows[i][k] = v
		}
	}
	r := New(name, schema)
	r.gen.Load().rows = rows
	r.Columnarize()
	return r, nil
}
