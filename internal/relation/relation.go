// Package relation is the relational substrate the preference library
// evaluates against: typed schemas, in-memory relations, projection, hard
// selection, grouping and CSV interchange. A relation's rows expose the
// pref.Tuple view required by preference evaluation, so database sets R
// plug directly into the BMO query model of §5.
package relation

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/boundcache"
	"repro/internal/filter"
	"repro/internal/pref"
)

// Type enumerates the supported column types.
type Type int

// Column types.
const (
	String Type = iota
	Int
	Float
	Bool
	Time
)

// String renders the type name.
func (t Type) String() string {
	switch t {
	case String:
		return "STRING"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Bool:
		return "BOOL"
	case Time:
		return "TIME"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Column is one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns with unique names.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema, rejecting duplicate column names.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on duplicates; for literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns the column list; callers must not modify it.
func (s *Schema) Columns() []Column { return s.cols }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Col returns the column at position i.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// checkValue verifies v is assignable to column type t.
func checkValue(t Type, v pref.Value) error {
	if v == nil {
		return nil
	}
	switch t {
	case String:
		if _, ok := v.(string); ok {
			return nil
		}
	case Int:
		switch v.(type) {
		case int, int8, int16, int32, int64:
			return nil
		}
	case Float:
		if _, ok := pref.Numeric(v); ok {
			return nil
		}
	case Bool:
		if _, ok := v.(bool); ok {
			return nil
		}
	case Time:
		if _, ok := v.(time.Time); ok {
			return nil
		}
	}
	return fmt.Errorf("relation: value %v (%T) not assignable to %s column", v, v, t)
}

// Row is one tuple's values in schema order.
type Row []pref.Value

// generation is one immutable epoch of a relation's storage: the row
// slice at a mutation version, plus the derived typed-column caches built
// lazily from exactly those rows. Mutators never modify a published
// generation — they build a successor and swap the relation's pointer —
// so any reader (or pinned Snapshot) that loaded a generation keeps a
// torn-free view for as long as it holds the pointer: rows, float
// columns, equality codes and group codes all agree on one version.
// Reclamation is epoch-based by construction: a superseded generation's
// arrays live until the last pinned reader drops it, then the garbage
// collector retires the epoch — there is no eager free to race against.
//
// A persistent relation's generation additionally carries a base: the
// immutable on-disk prefix (a checkpointed segment epoch, rows decoded
// on demand through the store's buffer pool, column arrays served as
// mmap'd views). rows then holds only the in-memory tail appended since
// the last checkpoint — the rows the WAL would replay after a crash.
// Snapshot pinning extends naturally: a pinned generation keeps its
// base (and therefore its epoch's mappings) reachable until the last
// reader drops it, and the store only unmaps epochs at Close.
type generation struct {
	base    *pagedBase // persisted immutable prefix; nil = fully in-memory
	rows    []Row      // all rows when base == nil, the tail beyond it otherwise
	version uint64

	// Derived caches, built lazily from rows under colMu. The rows are
	// immutable, so a build can never observe a concurrent mutation;
	// colMu only coordinates double-build avoidance and map access.
	colMu     sync.Mutex
	floatCols map[int]*floatColumn
	eqCols    map[int][]uint32
	groupCols map[string][]uint32
	mat       []Row // memoized base+tail materialization (base != nil only)

	// snap memoizes the frozen Snapshot view of this generation, so every
	// session pinning the same version shares one *Relation identity and
	// the bound-form caches (keyed by source pointer) hit across sessions.
	snapMu sync.Mutex
	snap   *Relation
}

// nrows returns the generation's total row count (base plus tail).
func (g *generation) nrows() int {
	if g.base != nil {
		return g.base.n() + len(g.rows)
	}
	return len(g.rows)
}

// row returns row i, decoding a base page through the buffer pool when
// the generation has a persisted prefix. Base reads panic on I/O or
// checksum failure — the row store is the authoritative copy, and a
// read API without error returns cannot degrade more gracefully than
// failing loudly (the serving layer's panic containment turns this
// into a query error, not a crash).
func (g *generation) row(i int) Row {
	if g.base != nil {
		if bn := g.base.n(); i < bn {
			return g.base.row(i)
		}
		return g.rows[i-g.base.n()]
	}
	return g.rows[i]
}

// all returns the generation's full row slice. For in-memory
// generations it is the row slice itself; for paged generations the
// base is materialized through the pool once and memoized, so the
// interpreted full-scan paths (Select, Project, Clone, CSV export)
// keep working against persistent relations at one decode per
// generation. Callers must not modify the result.
func (g *generation) all() []Row {
	if g.base == nil {
		return g.rows
	}
	g.colMu.Lock()
	defer g.colMu.Unlock()
	if g.mat == nil {
		rows := make([]Row, 0, g.nrows())
		rows = g.base.appendAll(rows)
		g.mat = append(rows, g.rows...)
	}
	return g.mat
}

// Relation is an in-memory database set R(B1, …, Bm). Storage is
// generational copy-on-write: the current generation (rows plus derived
// column caches) is published through an atomic pointer, mutators build a
// successor generation and swap, and Snapshot pins the current one as an
// immutable view. Reads and snapshots are therefore safe against
// concurrent Inserts; see Snapshot for the isolation contract.
type Relation struct {
	name    string
	schema  *Schema
	derived bool
	frozen  bool
	origin  *Relation // live relation a frozen Snapshot view was pinned from

	mu  sync.Mutex // serializes mutators (Insert, SortBy)
	gen atomic.Pointer[generation]

	// persist, when non-nil, ties the relation to a shard directory of
	// a Store: Insert write-ahead-logs before publishing, SortBy
	// rewrites the epoch, and checkpoints fold the tail into a fresh
	// segment epoch. Nil for ordinary in-memory relations.
	persist *shardPersist
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	r := &Relation{name: name, schema: schema}
	r.gen.Store(&generation{})
	return r
}

// newDerived builds a query-intermediate relation directly over the given
// row slice (which the caller hands over).
func newDerived(name string, schema *Schema, rows []Row) *Relation {
	r := New(name, schema)
	r.derived = true
	r.gen.Load().rows = rows
	return r
}

// cur returns the current generation.
func (r *Relation) cur() *generation { return r.gen.Load() }

// setRows publishes a successor generation holding the given rows; bulk
// loaders (ShardRelation, Reshard) use it after routing rows.
func (r *Relation) setRows(rows []Row) {
	r.mu.Lock()
	g := r.cur()
	r.gen.Store(&generation{rows: rows, version: g.version + 1})
	r.mu.Unlock()
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the row count, card(R).
func (r *Relation) Len() int { return r.cur().nrows() }

// Version returns the relation's mutation counter: it increases on every
// row mutation (Insert, SortBy) and never otherwise. Compile caches key
// bound forms by (relation, version, term), so a bumped counter strands
// every stale entry. It implements filter.Versioned.
func (r *Relation) Version() uint64 { return r.cur().version }

// Frozen reports whether the relation is an immutable Snapshot view;
// mutators refuse frozen relations.
func (r *Relation) Frozen() bool { return r.frozen }

// Snapshot pins the relation's current generation as an immutable view:
// a frozen *Relation sharing the pinned rows and derived column caches,
// valid indefinitely — concurrent Inserts on the live relation publish
// successor generations and never disturb a pinned one, so a query
// evaluated against the snapshot can never observe a torn mutation. The
// view is memoized per generation: every caller pinning the same version
// gets the same *Relation identity, so the bound-form caches (keyed by
// source pointer and version) amortize across sessions reading the same
// epoch. Snapshot of a frozen view returns the view itself.
func (r *Relation) Snapshot() *Relation {
	g := r.cur()
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	if g.snap == nil {
		if r.frozen {
			g.snap = r
		} else {
			s := &Relation{name: r.name, schema: r.schema, derived: r.derived, frozen: true, origin: r}
			s.gen.Store(g)
			g.snap = s
		}
	}
	return g.snap
}

// Origin returns the live relation behind this one: a frozen Snapshot
// view answers with the relation it was pinned from, everything else
// with itself. Caches that must stay coherent across generations (the
// result cache keys entries by the live identity plus the generation
// version) use it so a hit recorded through a snapshot view and a hit
// recorded through the live relation land on the same key.
func (r *Relation) Origin() *Relation {
	if r.origin != nil {
		return r.origin
	}
	return r
}

// PeekSnapshot returns the memoized Snapshot view of the CURRENT
// generation, without creating one. Eviction sweeps use it: dropping a
// catalog relation must also release bound forms cached against its
// snapshot identity (see engine.EvictRelation). Superseded generations'
// views are unreachable from here by design — they retire with their
// last reader and their cache entries fall to capacity eviction.
func (r *Relation) PeekSnapshot() (*Relation, bool) {
	g := r.cur()
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	return g.snap, g.snap != nil
}

// Ephemeral reports whether the relation is a derived query intermediate
// (built by Pick, Select, Where or a projection). Compile caches skip
// ephemeral relations: their identity is fresh per query, so a cached
// bound form could never be reused and would only pin the materialized
// rows until eviction. It implements filter.Ephemeraler.
func (r *Relation) Ephemeral() bool { return r.derived }

// Row returns row i; callers must not modify it.
func (r *Relation) Row(i int) Row { return r.cur().row(i) }

// Rows returns all rows; callers must not modify the slice. For a
// persistent relation this materializes (and memoizes) the paged base
// through the buffer pool.
func (r *Relation) Rows() []Row { return r.cur().all() }

// ErrFrozen is returned by mutators invoked on a Snapshot view.
var ErrFrozen = fmt.Errorf("relation: snapshot views are read-only")

// InsertHook observes one append: r is the live relation, oldVersion the
// generation version the append superseded, and newIdx the position of
// the appended row in the successor generation (always the last row).
// Hooks run inside Insert's writer critical section — after the successor
// generation is published, before the lock is released — so invocations
// on one relation are serialized and see consecutive (oldVersion,
// oldVersion+1) transitions with no gaps. They must be fast and must not
// mutate the relation. The result cache registers one to carry cached
// maxima forward across generations (see engine/resultmaint).
type InsertHook func(r *Relation, oldVersion uint64, newIdx int)

var (
	hookMu      sync.RWMutex
	insertHooks []InsertHook
)

// RegisterInsertHook installs a hook invoked on every successful Insert
// into a non-derived relation. Registration is append-only (package init
// time, typically); there is no unregister.
func RegisterInsertHook(h InsertHook) {
	hookMu.Lock()
	insertHooks = append(insertHooks, h)
	hookMu.Unlock()
}

// runInsertHooks fires the registered hooks; the caller holds r.mu.
func runInsertHooks(r *Relation, oldVersion uint64, newIdx int) {
	if r.derived {
		return // ephemeral intermediates are never cached
	}
	hookMu.RLock()
	hooks := insertHooks
	hookMu.RUnlock()
	for _, h := range hooks {
		h(r, oldVersion, newIdx)
	}
}

// DisplacedHook observes shard relations displaced by a Reshard: the
// old shard list whose rows were redistributed into fresh shards. The
// displaced relations are unreachable from the table afterwards (only
// pinned snapshots still address them), so every cache keyed by their
// identity — compiled bound forms, rank score/perm vectors, memoized
// BMO maxima — must be swept or it holds stale entries until capacity
// eviction. The engine registers one that runs its full per-relation
// eviction sweep (see engine.EvictRelation).
type DisplacedHook func(shards []*Relation)

var displacedHooks []DisplacedHook // guarded by hookMu

// RegisterDisplacedHook installs a hook invoked with the displaced
// shard list of every Reshard. Registration is append-only, like
// RegisterInsertHook.
func RegisterDisplacedHook(h DisplacedHook) {
	hookMu.Lock()
	displacedHooks = append(displacedHooks, h)
	hookMu.Unlock()
}

// runDisplacedHooks fires the registered displaced-shard hooks.
func runDisplacedHooks(shards []*Relation) {
	hookMu.RLock()
	hooks := displacedHooks
	hookMu.RUnlock()
	for _, h := range hooks {
		h(shards)
	}
}

// Insert appends a row after type-checking every value against the
// schema, publishing a successor generation. Concurrent Inserts are safe
// (they serialize on the relation's writer lock), and concurrent readers
// or pinned Snapshots keep their generation untouched: the append either
// writes beyond every published length or relocates to a fresh array,
// so no published row is ever overwritten.
func (r *Relation) Insert(row Row) error {
	if r.frozen {
		return fmt.Errorf("relation %s: %w", r.name, ErrFrozen)
	}
	if len(row) != r.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), r.schema.Len())
	}
	for i, v := range row {
		if err := checkValue(r.schema.Col(i).Type, v); err != nil {
			return fmt.Errorf("relation %s, column %s: %w", r.name, r.schema.Col(i).Name, err)
		}
	}
	r.mu.Lock()
	g := r.cur()
	stored := append(Row(nil), row...)
	if r.persist != nil {
		// Write-ahead: the row must be durable in the WAL before the
		// successor generation publishes. A failed append leaves both
		// the disk and the in-memory state at the old generation.
		if err := r.persist.logInsert(stored); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("relation %s: %w", r.name, err)
		}
	}
	ng := &generation{
		base:    g.base,
		rows:    append(g.rows, stored),
		version: g.version + 1,
	}
	r.gen.Store(ng)
	runInsertHooks(r, g.version, g.nrows())
	if r.persist != nil {
		r.persist.maybeCheckpointLocked(r, ng)
	}
	r.mu.Unlock()
	return nil
}

// MustInsert is Insert that panics on error; for test fixtures.
func (r *Relation) MustInsert(rows ...Row) *Relation {
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			panic(err)
		}
	}
	return r
}

// Tuple returns the pref.Tuple view of row i.
func (r *Relation) Tuple(i int) pref.Tuple {
	return rowTuple{schema: r.schema, row: r.cur().row(i)}
}

// Tuples returns pref.Tuple views of every row.
func (r *Relation) Tuples() []pref.Tuple {
	rows := r.cur().all()
	out := make([]pref.Tuple, len(rows))
	for i, row := range rows {
		out[i] = rowTuple{schema: r.schema, row: row}
	}
	return out
}

// rowTuple adapts a schema-indexed row to the pref.Tuple interface.
type rowTuple struct {
	schema *Schema
	row    Row
}

// Get implements pref.Tuple.
func (t rowTuple) Get(attr string) (pref.Value, bool) {
	i, ok := t.schema.Index(attr)
	if !ok {
		return nil, false
	}
	return t.row[i], true
}

// FromRows builds a relation containing the given rows.
func FromRows(name string, schema *Schema, rows []Row) (*Relation, error) {
	r := New(name, schema)
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Select returns the rows satisfying the hard predicate, as a new
// relation. This is the interpreted selection path — one boxed tuple
// evaluation per row; predicates expressible as a filter.Pred tree should
// go through Where, which binds to the cached column arrays instead.
func (r *Relation) Select(pred func(pref.Tuple) bool) *Relation {
	rows := r.cur().all()
	var kept []Row
	for _, row := range rows {
		if pred(rowTuple{schema: r.schema, row: row}) {
			kept = append(kept, row)
		}
	}
	return newDerived(r.name, r.schema, kept)
}

// Where returns the rows satisfying the predicate tree, as a new relation.
// The tree is compiled against the relation's cached column arrays through
// the selection cache (see filter.CompileCached), so repeated selections
// over an unchanged relation reuse the finished bitmap; WhereIndices
// returns the row positions instead of materializing.
func (r *Relation) Where(pred filter.Pred) *Relation {
	return r.Pick(r.WhereIndices(pred))
}

// WhereIndices returns the positions of the rows satisfying the predicate
// tree, in ascending order, through the compiled selection path. The
// slice is the caller's to own: the cached bound form's memoized index
// list is copied at this API boundary so mutations cannot corrupt later
// queries.
func (r *Relation) WhereIndices(pred filter.Pred) []int {
	return slices.Clone(filter.CompileCached(pred, r).Indices())
}

// Pick returns a new relation containing the rows at the given indices.
func (r *Relation) Pick(indices []int) *Relation {
	g := r.cur()
	rows := make([]Row, 0, len(indices))
	for _, i := range indices {
		rows = append(rows, g.row(i))
	}
	return newDerived(r.name, r.schema, rows)
}

// Project returns π over the named attributes, preserving duplicates
// (bag semantics); use DistinctProject for set semantics.
func (r *Relation) Project(attrs []string) (*Relation, error) {
	cols := make([]Column, len(attrs))
	idx := make([]int, len(attrs))
	for k, a := range attrs {
		i, ok := r.schema.Index(a)
		if !ok {
			return nil, fmt.Errorf("relation %s: no column %q", r.name, a)
		}
		idx[k] = i
		cols[k] = r.schema.Col(i)
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	src := r.cur().all()
	rows := make([]Row, 0, len(src))
	for _, row := range src {
		proj := make(Row, len(idx))
		for k, i := range idx {
			proj[k] = row[i]
		}
		rows = append(rows, proj)
	}
	return newDerived(r.name, schema, rows), nil
}

// DistinctProject returns π over the named attributes with duplicates
// removed; its cardinality is card(π_A(R)), used by result-size metrics
// (Definition 18).
func (r *Relation) DistinctProject(attrs []string) (*Relation, error) {
	proj, err := r.Project(attrs)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, proj.Len())
	var rows []Row
	for i, row := range proj.cur().all() {
		k := pref.ProjectionKey(proj.Tuple(i), attrs)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		rows = append(rows, row)
	}
	return newDerived(r.name, proj.schema, rows), nil
}

// DistinctCount returns card(π_A(R)) without materializing the projection.
func (r *Relation) DistinctCount(attrs []string) int {
	rows := r.cur().all()
	seen := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		seen[pref.ProjectionKey(rowTuple{schema: r.schema, row: row}, attrs)] = struct{}{}
	}
	return len(seen)
}

// Groups partitions the relation's row indices by equal projections onto
// attrs, in first-seen order. It backs the groupby evaluation of Prop 10.
// Equality is the EqualValues sense, via the cached per-column equality
// codes (see GroupKey for the key encoding and the NaN policy).
func (r *Relation) Groups(attrs []string) [][]int {
	return r.GroupsOn(attrs, nil)
}

// GroupsOn partitions the candidate row positions by equal projections
// onto attrs, in first-seen order; idx == nil means every row. Group keys
// are composite equality codes built from the cached EqColumn arrays —
// no per-row string formatting — so an index-chained grouped query
// (WHERE bitmap → grouped BMO) partitions its candidate set without
// materializing a single tuple. See GroupKeys for the code semantics.
func (r *Relation) GroupsOn(attrs []string, idx []int) [][]int {
	g := r.cur()
	codes := g.groupKeys(r.schema, attrs)
	n := len(idx)
	if idx == nil {
		n = g.nrows()
	}
	at := func(k int) int {
		if idx == nil {
			return k
		}
		return idx[k]
	}
	first := make(map[uint32]int) // code → slot in out
	var out [][]int
	for k := 0; k < n; k++ {
		i := at(k)
		c := codes[i]
		slot, seen := first[c]
		if !seen {
			slot = len(out)
			first[c] = slot
			out = append(out, nil)
		}
		out[slot] = append(out[slot], i)
	}
	return out
}

// GroupKeys returns one composite equality code per row: rows carry equal
// codes exactly when their projections onto attrs are equal in the
// EqualValues sense (the group equivalence A↔ of Definition 16). Codes
// come from the cached EqColumn arrays, combined pairwise through a dense
// re-dictionary for multi-attribute groupings.
//
// NaN policy: each NaN occurrence forms its own equality class (EqColumn
// semantics — NaN ≠ NaN under EqualValues), so every NaN row is its own
// group. The previous ProjectionKey string encoding collapsed all NaNs of
// a column into one class; the code path is the documented semantics now,
// matching how the compiled preference layer treats NaN throughout.
// Attributes outside the schema fall back to a ValueKey dictionary over
// the tuple view (all rows lack the attribute and share one class), so
// grouping on a foreign attribute list stays well-defined. Composite
// codes are cached per attribute list on the relation's current
// generation — like EqColumn itself — so repeated grouped queries
// (however selective their candidate subsets) pay the full-relation
// dictionary pass once per epoch. The returned slice may alias a cached
// column; callers must not modify it.
func (r *Relation) GroupKeys(attrs []string) []uint32 {
	return r.cur().groupKeys(r.schema, attrs)
}

// groupKeys computes (or serves) the generation's composite group codes.
// The generation's rows are immutable, so the derivation can run outside
// the cache lock: a racing duplicate build produces identical codes and
// the second store is harmless.
func (g *generation) groupKeys(schema *Schema, attrs []string) []uint32 {
	if len(attrs) == 0 {
		return make([]uint32, g.nrows())
	}
	if len(attrs) == 1 {
		return g.attrCodes(schema, attrs[0])
	}
	var key strings.Builder
	for _, a := range attrs {
		boundcache.WriteKeyStr(&key, a)
	}
	g.colMu.Lock()
	if codes, hit := g.groupCols[key.String()]; hit {
		g.colMu.Unlock()
		return codes
	}
	g.colMu.Unlock()
	acc := g.attrCodes(schema, attrs[0])
	for _, a := range attrs[1:] {
		next := g.attrCodes(schema, a)
		pair := make(map[uint64]uint32, 16)
		combined := make([]uint32, g.nrows())
		n := uint32(1)
		for i := range combined {
			k := uint64(acc[i])<<32 | uint64(next[i])
			code, hit := pair[k]
			if !hit {
				code = n
				n++
				pair[k] = code
			}
			combined[i] = code
		}
		acc = combined
	}
	g.colMu.Lock()
	if g.groupCols == nil {
		g.groupCols = make(map[string][]uint32)
	}
	g.groupCols[key.String()] = acc
	g.colMu.Unlock()
	return acc
}

// attrCodes returns the equality-code column of one attribute: the cached
// EqColumn for schema columns, a ValueKey dictionary over the tuple views
// for anything else (code 0 = attribute absent, shared — absence on both
// sides counts as agreement, per EqualOn).
func (g *generation) attrCodes(schema *Schema, attr string) []uint32 {
	if codes, ok := g.eqColumn(schema, attr); ok {
		return codes
	}
	codes := make([]uint32, g.nrows())
	dict := make(map[string]uint32)
	next := uint32(1)
	for i, row := range g.all() {
		v, ok := rowTuple{schema: schema, row: row}.Get(attr)
		if !ok {
			codes[i] = 0
			continue
		}
		k := pref.ValueKey(v)
		code, hit := dict[k]
		if !hit {
			code = next
			next++
			dict[k] = code
		}
		codes[i] = code
	}
	return codes
}

// SortBy orders the relation's rows by the given less function over tuple
// views; the sort is stable. It publishes a successor generation over a
// copied row slice (rows themselves are shared, copy-on-write at the
// slice level), so pinned Snapshots keep their original order. SortBy
// panics on a frozen Snapshot view.
func (r *Relation) SortBy(less func(a, b pref.Tuple) bool) {
	if r.frozen {
		panic("relation: SortBy on a frozen snapshot view")
	}
	r.mu.Lock()
	g := r.cur()
	rows := slices.Clone(g.all())
	slices.SortStableFunc(rows, func(a, b Row) int {
		ta := rowTuple{schema: r.schema, row: a}
		tb := rowTuple{schema: r.schema, row: b}
		switch {
		case less(ta, tb):
			return -1
		case less(tb, ta):
			return 1
		}
		return 0
	})
	if r.persist != nil {
		// Crash-safe reorder: write the sorted rows as a fresh epoch and
		// publish it atomically (temp epoch + metadata rename). A crash
		// recovers to either the old or the new order, never a mix; a
		// plain write failure degrades to an in-memory-only sort that the
		// next successful checkpoint persists.
		if ng, err := r.persist.rewriteLocked(rows, g.version+1); err == nil {
			r.gen.Store(ng)
			r.mu.Unlock()
			return
		}
	}
	r.gen.Store(&generation{rows: rows, version: g.version + 1})
	r.mu.Unlock()
}

// Clone returns a deep copy of the relation; the copy keeps the
// original's ephemerality but is never frozen (it shares nothing with
// the original, so it is freely mutable).
func (r *Relation) Clone() *Relation {
	src := r.cur().all()
	rows := make([]Row, len(src))
	for i, row := range src {
		rows[i] = append(Row(nil), row...)
	}
	out := New(r.name, r.schema)
	out.derived = r.derived
	out.gen.Load().rows = rows
	return out
}

// String renders the relation as an aligned text table.
func (r *Relation) String() string {
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	rows := r.cur().all()
	cells := make([][]string, len(rows))
	for i, row := range rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := pref.FormatValue(v)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for pad := len(v); pad < widths[j]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	seps := make([]string, len(names))
	for j := range seps {
		seps[j] = strings.Repeat("-", widths[j])
	}
	writeRow(seps)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
