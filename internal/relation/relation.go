// Package relation is the relational substrate the preference library
// evaluates against: typed schemas, in-memory relations, projection, hard
// selection, grouping and CSV interchange. A relation's rows expose the
// pref.Tuple view required by preference evaluation, so database sets R
// plug directly into the BMO query model of §5.
package relation

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/boundcache"
	"repro/internal/filter"
	"repro/internal/pref"
)

// Type enumerates the supported column types.
type Type int

// Column types.
const (
	String Type = iota
	Int
	Float
	Bool
	Time
)

// String renders the type name.
func (t Type) String() string {
	switch t {
	case String:
		return "STRING"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Bool:
		return "BOOL"
	case Time:
		return "TIME"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Column is one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns with unique names.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema, rejecting duplicate column names.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on duplicates; for literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns the column list; callers must not modify it.
func (s *Schema) Columns() []Column { return s.cols }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Col returns the column at position i.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// checkValue verifies v is assignable to column type t.
func checkValue(t Type, v pref.Value) error {
	if v == nil {
		return nil
	}
	switch t {
	case String:
		if _, ok := v.(string); ok {
			return nil
		}
	case Int:
		switch v.(type) {
		case int, int8, int16, int32, int64:
			return nil
		}
	case Float:
		if _, ok := pref.Numeric(v); ok {
			return nil
		}
	case Bool:
		if _, ok := v.(bool); ok {
			return nil
		}
	case Time:
		if _, ok := v.(time.Time); ok {
			return nil
		}
	}
	return fmt.Errorf("relation: value %v (%T) not assignable to %s column", v, v, t)
}

// Row is one tuple's values in schema order.
type Row []pref.Value

// Relation is an in-memory database set R(B1, …, Bm). Rows are the storage
// of record; typed column arrays for compiled evaluation are maintained
// lazily alongside them (see columnar.go).
type Relation struct {
	name   string
	schema *Schema
	rows   []Row

	colMu     sync.Mutex
	floatCols map[int]*floatColumn
	eqCols    map[int][]uint32
	groupCols map[string][]uint32
	version   atomic.Uint64
	derived   bool
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the row count, card(R).
func (r *Relation) Len() int { return len(r.rows) }

// Version returns the relation's mutation counter: it increases on every
// row mutation (Insert, SortBy) and never otherwise. Compile caches key
// bound forms by (relation, version, term), so a bumped counter strands
// every stale entry. It implements filter.Versioned.
func (r *Relation) Version() uint64 { return r.version.Load() }

// Ephemeral reports whether the relation is a derived query intermediate
// (built by Pick, Select, Where or a projection). Compile caches skip
// ephemeral relations: their identity is fresh per query, so a cached
// bound form could never be reused and would only pin the materialized
// rows until eviction. It implements filter.Ephemeraler.
func (r *Relation) Ephemeral() bool { return r.derived }

// Row returns row i; callers must not modify it.
func (r *Relation) Row(i int) Row { return r.rows[i] }

// Rows returns all rows; callers must not modify the slice.
func (r *Relation) Rows() []Row { return r.rows }

// Insert appends a row after type-checking every value against the schema.
func (r *Relation) Insert(row Row) error {
	if len(row) != r.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), r.schema.Len())
	}
	for i, v := range row {
		if err := checkValue(r.schema.Col(i).Type, v); err != nil {
			return fmt.Errorf("relation %s, column %s: %w", r.name, r.schema.Col(i).Name, err)
		}
	}
	r.rows = append(r.rows, append(Row(nil), row...))
	r.invalidateColumns()
	return nil
}

// MustInsert is Insert that panics on error; for test fixtures.
func (r *Relation) MustInsert(rows ...Row) *Relation {
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			panic(err)
		}
	}
	return r
}

// Tuple returns the pref.Tuple view of row i.
func (r *Relation) Tuple(i int) pref.Tuple {
	return rowTuple{schema: r.schema, row: r.rows[i]}
}

// Tuples returns pref.Tuple views of every row.
func (r *Relation) Tuples() []pref.Tuple {
	out := make([]pref.Tuple, len(r.rows))
	for i := range r.rows {
		out[i] = r.Tuple(i)
	}
	return out
}

// rowTuple adapts a schema-indexed row to the pref.Tuple interface.
type rowTuple struct {
	schema *Schema
	row    Row
}

// Get implements pref.Tuple.
func (t rowTuple) Get(attr string) (pref.Value, bool) {
	i, ok := t.schema.Index(attr)
	if !ok {
		return nil, false
	}
	return t.row[i], true
}

// FromRows builds a relation containing the given rows.
func FromRows(name string, schema *Schema, rows []Row) (*Relation, error) {
	r := New(name, schema)
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Select returns the rows satisfying the hard predicate, as a new
// relation. This is the interpreted selection path — one boxed tuple
// evaluation per row; predicates expressible as a filter.Pred tree should
// go through Where, which binds to the cached column arrays instead.
func (r *Relation) Select(pred func(pref.Tuple) bool) *Relation {
	out := New(r.name, r.schema)
	out.derived = true
	for i := range r.rows {
		if pred(r.Tuple(i)) {
			out.rows = append(out.rows, r.rows[i])
		}
	}
	return out
}

// Where returns the rows satisfying the predicate tree, as a new relation.
// The tree is compiled against the relation's cached column arrays through
// the selection cache (see filter.CompileCached), so repeated selections
// over an unchanged relation reuse the finished bitmap; WhereIndices
// returns the row positions instead of materializing.
func (r *Relation) Where(pred filter.Pred) *Relation {
	return r.Pick(r.WhereIndices(pred))
}

// WhereIndices returns the positions of the rows satisfying the predicate
// tree, in ascending order, through the compiled selection path. The
// slice is the caller's to own: the cached bound form's memoized index
// list is copied at this API boundary so mutations cannot corrupt later
// queries.
func (r *Relation) WhereIndices(pred filter.Pred) []int {
	return slices.Clone(filter.CompileCached(pred, r).Indices())
}

// Pick returns a new relation containing the rows at the given indices.
func (r *Relation) Pick(indices []int) *Relation {
	out := New(r.name, r.schema)
	out.derived = true
	out.rows = make([]Row, 0, len(indices))
	for _, i := range indices {
		out.rows = append(out.rows, r.rows[i])
	}
	return out
}

// Project returns π over the named attributes, preserving duplicates
// (bag semantics); use DistinctProject for set semantics.
func (r *Relation) Project(attrs []string) (*Relation, error) {
	cols := make([]Column, len(attrs))
	idx := make([]int, len(attrs))
	for k, a := range attrs {
		i, ok := r.schema.Index(a)
		if !ok {
			return nil, fmt.Errorf("relation %s: no column %q", r.name, a)
		}
		idx[k] = i
		cols[k] = r.schema.Col(i)
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := New(r.name, schema)
	out.derived = true
	for _, row := range r.rows {
		proj := make(Row, len(idx))
		for k, i := range idx {
			proj[k] = row[i]
		}
		out.rows = append(out.rows, proj)
	}
	return out, nil
}

// DistinctProject returns π over the named attributes with duplicates
// removed; its cardinality is card(π_A(R)), used by result-size metrics
// (Definition 18).
func (r *Relation) DistinctProject(attrs []string) (*Relation, error) {
	proj, err := r.Project(attrs)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, proj.Len())
	out := New(r.name, proj.schema)
	out.derived = true
	for i, row := range proj.rows {
		k := pref.ProjectionKey(proj.Tuple(i), attrs)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// DistinctCount returns card(π_A(R)) without materializing the projection.
func (r *Relation) DistinctCount(attrs []string) int {
	seen := make(map[string]struct{}, r.Len())
	for i := range r.rows {
		seen[pref.ProjectionKey(r.Tuple(i), attrs)] = struct{}{}
	}
	return len(seen)
}

// Groups partitions the relation's row indices by equal projections onto
// attrs, in first-seen order. It backs the groupby evaluation of Prop 10.
// Equality is the EqualValues sense, via the cached per-column equality
// codes (see GroupKey for the key encoding and the NaN policy).
func (r *Relation) Groups(attrs []string) [][]int {
	return r.GroupsOn(attrs, nil)
}

// GroupsOn partitions the candidate row positions by equal projections
// onto attrs, in first-seen order; idx == nil means every row. Group keys
// are composite equality codes built from the cached EqColumn arrays —
// no per-row string formatting — so an index-chained grouped query
// (WHERE bitmap → grouped BMO) partitions its candidate set without
// materializing a single tuple. See GroupKeys for the code semantics.
func (r *Relation) GroupsOn(attrs []string, idx []int) [][]int {
	codes := r.GroupKeys(attrs)
	n := len(idx)
	if idx == nil {
		n = len(r.rows)
	}
	at := func(k int) int {
		if idx == nil {
			return k
		}
		return idx[k]
	}
	first := make(map[uint32]int) // code → slot in out
	var out [][]int
	for k := 0; k < n; k++ {
		i := at(k)
		c := codes[i]
		slot, seen := first[c]
		if !seen {
			slot = len(out)
			first[c] = slot
			out = append(out, nil)
		}
		out[slot] = append(out[slot], i)
	}
	return out
}

// GroupKeys returns one composite equality code per row: rows carry equal
// codes exactly when their projections onto attrs are equal in the
// EqualValues sense (the group equivalence A↔ of Definition 16). Codes
// come from the cached EqColumn arrays, combined pairwise through a dense
// re-dictionary for multi-attribute groupings.
//
// NaN policy: each NaN occurrence forms its own equality class (EqColumn
// semantics — NaN ≠ NaN under EqualValues), so every NaN row is its own
// group. The previous ProjectionKey string encoding collapsed all NaNs of
// a column into one class; the code path is the documented semantics now,
// matching how the compiled preference layer treats NaN throughout.
// Attributes outside the schema fall back to a ValueKey dictionary over
// the tuple view (all rows lack the attribute and share one class), so
// grouping on a foreign attribute list stays well-defined. Composite
// codes are cached per attribute list until the next row mutation — like
// EqColumn itself — so repeated grouped queries (however selective their
// candidate subsets) pay the full-relation dictionary pass once. The
// returned slice may alias a cached column; callers must not modify it.
func (r *Relation) GroupKeys(attrs []string) []uint32 {
	if len(attrs) == 0 {
		return make([]uint32, len(r.rows))
	}
	if len(attrs) == 1 {
		return r.attrCodes(attrs[0])
	}
	var key strings.Builder
	for _, a := range attrs {
		boundcache.WriteKeyStr(&key, a)
	}
	r.colMu.Lock()
	if r.groupCols == nil {
		r.groupCols = make(map[string][]uint32)
	}
	if codes, hit := r.groupCols[key.String()]; hit {
		r.colMu.Unlock()
		return codes
	}
	// Capture the version under the lock: invalidateColumns bumps it with
	// the lock held, so an unchanged version at store time proves no
	// mutation slipped in while the codes were being combined below.
	v0 := r.version.Load()
	r.colMu.Unlock()
	acc := r.attrCodes(attrs[0])
	for _, a := range attrs[1:] {
		next := r.attrCodes(a)
		pair := make(map[uint64]uint32, 16)
		combined := make([]uint32, len(r.rows))
		n := uint32(1)
		for i := range combined {
			k := uint64(acc[i])<<32 | uint64(next[i])
			code, hit := pair[k]
			if !hit {
				code = n
				n++
				pair[k] = code
			}
			combined[i] = code
		}
		acc = combined
	}
	r.colMu.Lock()
	if r.version.Load() == v0 {
		if r.groupCols == nil {
			r.groupCols = make(map[string][]uint32)
		}
		r.groupCols[key.String()] = acc
	}
	r.colMu.Unlock()
	return acc
}

// attrCodes returns the equality-code column of one attribute: the cached
// EqColumn for schema columns, a ValueKey dictionary over the tuple views
// for anything else (code 0 = attribute absent, shared — absence on both
// sides counts as agreement, per EqualOn).
func (r *Relation) attrCodes(attr string) []uint32 {
	if codes, ok := r.EqColumn(attr); ok {
		return codes
	}
	codes := make([]uint32, len(r.rows))
	dict := make(map[string]uint32)
	next := uint32(1)
	for i := range r.rows {
		v, ok := r.Tuple(i).Get(attr)
		if !ok {
			codes[i] = 0
			continue
		}
		k := pref.ValueKey(v)
		code, hit := dict[k]
		if !hit {
			code = next
			next++
			dict[k] = code
		}
		codes[i] = code
	}
	return codes
}

// SortBy orders the relation's rows in place by the given less function
// over tuple views; the sort is stable.
func (r *Relation) SortBy(less func(a, b pref.Tuple) bool) {
	slices.SortStableFunc(r.rows, func(a, b Row) int {
		ta := rowTuple{schema: r.schema, row: a}
		tb := rowTuple{schema: r.schema, row: b}
		switch {
		case less(ta, tb):
			return -1
		case less(tb, ta):
			return 1
		}
		return 0
	})
	r.invalidateColumns()
}

// Clone returns a deep copy of the relation; the copy keeps the
// original's ephemerality.
func (r *Relation) Clone() *Relation {
	out := New(r.name, r.schema)
	out.derived = r.derived
	out.rows = make([]Row, len(r.rows))
	for i, row := range r.rows {
		out.rows[i] = append(Row(nil), row...)
	}
	return out
}

// String renders the relation as an aligned text table.
func (r *Relation) String() string {
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.rows))
	for i, row := range r.rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := pref.FormatValue(v)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for pad := len(v); pad < widths[j]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	seps := make([]string, len(names))
	for j := range seps {
		seps[j] = strings.Repeat("-", widths[j])
	}
	writeRow(seps)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
