package relation

import (
	"testing"
	"time"

	"repro/internal/pref"
)

func TestFloatColumnTypesAndMasks(t *testing.T) {
	day := time.Date(2002, 8, 20, 0, 0, 0, 0, time.UTC)
	r := New("R", MustSchema(
		Column{Name: "i", Type: Int},
		Column{Name: "f", Type: Float},
		Column{Name: "t", Type: Time},
		Column{Name: "s", Type: String},
	))
	r.MustInsert(
		Row{int64(3), 1.5, day, "a"},
		Row{int64(-2), nil, day.AddDate(0, 0, 1), "b"},
	)
	vals, onScale, ok := r.FloatColumn("i")
	if !ok || vals[0] != 3 || vals[1] != -2 || !onScale[0] || !onScale[1] {
		t.Errorf("int column: vals=%v onScale=%v ok=%v", vals, onScale, ok)
	}
	vals, onScale, ok = r.FloatColumn("f")
	if !ok || vals[0] != 1.5 || onScale[1] {
		t.Errorf("float column must mask NULLs: vals=%v onScale=%v", vals, onScale)
	}
	vals, _, ok = r.FloatColumn("t")
	if !ok || vals[0] != float64(day.Unix()) {
		t.Errorf("time column maps to Unix seconds: %v", vals)
	}
	if _, _, ok := r.FloatColumn("s"); ok {
		t.Error("string columns are not linearly ordered")
	}
	if _, _, ok := r.FloatColumn("nope"); ok {
		t.Error("unknown column must report !ok")
	}
}

func TestFloatColumnInvalidatedByMutation(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "v", Type: Float}))
	r.MustInsert(Row{1.0})
	vals, _, _ := r.FloatColumn("v")
	if len(vals) != 1 {
		t.Fatalf("len=%d", len(vals))
	}
	r.MustInsert(Row{2.0})
	vals, _, _ = r.FloatColumn("v")
	if len(vals) != 2 || vals[1] != 2 {
		t.Errorf("Insert must invalidate the columnar cache: %v", vals)
	}
	r.SortBy(func(a, b pref.Tuple) bool {
		av, _ := a.Get("v")
		bv, _ := b.Get("v")
		an, _ := pref.Numeric(av)
		bn, _ := pref.Numeric(bv)
		return an > bn
	})
	vals, _, _ = r.FloatColumn("v")
	if vals[0] != 2 || vals[1] != 1 {
		t.Errorf("SortBy must invalidate the columnar cache: %v", vals)
	}
}

func TestFromColumns(t *testing.T) {
	schema := MustSchema(
		Column{Name: "a", Type: Int},
		Column{Name: "b", Type: String},
	)
	r, err := FromColumns("C", schema,
		[]pref.Value{int64(1), int64(2), int64(3)},
		[]pref.Value{"x", "y", "z"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("len=%d", r.Len())
	}
	if v, _ := r.Tuple(1).Get("b"); v != "y" {
		t.Errorf("row view: %v", v)
	}
	vals, onScale, ok := r.FloatColumn("a")
	if !ok || vals[2] != 3 || !onScale[2] {
		t.Errorf("born-columnar access: %v %v %v", vals, onScale, ok)
	}
	if _, err := FromColumns("C", schema, []pref.Value{int64(1)}, []pref.Value{"x", "y"}); err == nil {
		t.Error("ragged columns must fail")
	}
	if _, err := FromColumns("C", schema, []pref.Value{"notint"}, []pref.Value{"x"}); err == nil {
		t.Error("type mismatch must fail")
	}
	if _, err := FromColumns("C", schema, []pref.Value{int64(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
}
