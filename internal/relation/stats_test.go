package relation

import (
	"testing"
)

func statsFixture() *Relation {
	r := New("R", MustSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "price", Type: Float},
		Column{Name: "color", Type: String},
	))
	// id ascending; price anti-correlated with id; 2 distinct colors.
	prices := []float64{9, 7, 5, 3, 1}
	for i, p := range prices {
		r.MustInsert(Row{int64(i), p, []string{"red", "blue"}[i%2]})
	}
	return r
}

func TestAnalyzeBasics(t *testing.T) {
	s := Analyze(statsFixture())
	if s.Card != 5 || s.Sampled != 5 {
		t.Fatalf("card=%d sampled=%d", s.Card, s.Sampled)
	}
	id, ok := s.Col("id")
	if !ok || !id.SortedAsc || id.SortedDesc || id.Distinct != 5 {
		t.Errorf("id stats: %+v", id)
	}
	if !id.HasRange || id.Min != 0 || id.Max != 4 {
		t.Errorf("id range: %+v", id)
	}
	price, _ := s.Col("price")
	if !price.SortedDesc || price.SortedAsc {
		t.Errorf("price order: %+v", price)
	}
	color, _ := s.Col("color")
	if color.Distinct != 2 || color.HasRange {
		t.Errorf("color stats: %+v", color)
	}
	if _, ok := s.Col("nope"); ok {
		t.Error("unknown column must not resolve")
	}
}

func TestAnalyzeCorrelationSign(t *testing.T) {
	s := Analyze(statsFixture())
	// id rises while price falls: strongly negative correlation.
	if !s.HasCorr || s.Corr > -0.9 {
		t.Errorf("corr=%v has=%v, want strongly negative", s.Corr, s.HasCorr)
	}

	pos := New("P", MustSchema(
		Column{Name: "a", Type: Float},
		Column{Name: "b", Type: Float},
	))
	for i := 0; i < 10; i++ {
		pos.MustInsert(Row{float64(i), float64(2 * i)})
	}
	if ps := Analyze(pos); !ps.HasCorr || ps.Corr < 0.9 {
		t.Errorf("corr=%v, want strongly positive", ps.Corr)
	}
}

func TestAnalyzeSampleStride(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "v", Type: Int}))
	for i := 0; i < 1000; i++ {
		r.MustInsert(Row{int64(i)})
	}
	s := AnalyzeSample(r, 100)
	if s.Sampled > 100 || s.Sampled < 50 {
		t.Errorf("sampled=%d, want ≈100", s.Sampled)
	}
	v, _ := s.Col("v")
	// Min/max come from the full scan even when distinct is sampled.
	if v.Min != 0 || v.Max != 999 {
		t.Errorf("range [%g,%g] must be full-scan exact", v.Min, v.Max)
	}
	if v.Distinct > 100 {
		t.Errorf("sampled distinct=%d exceeds sample", v.Distinct)
	}
	if !v.SortedAsc {
		t.Error("full-scan sortedness must detect ascending order")
	}
}

func TestAnalyzeEmptyAndSingle(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "v", Type: Int}))
	s := Analyze(r)
	if s.Card != 0 || s.HasCorr {
		t.Errorf("empty stats: %+v", s)
	}
	v, _ := s.Col("v")
	if !v.SortedAsc || !v.SortedDesc {
		t.Error("empty column is trivially sorted")
	}
	r.MustInsert(Row{int64(7)})
	s = Analyze(r)
	if v, _ := s.Col("v"); v.Distinct != 1 || v.Min != 7 || v.Max != 7 {
		t.Errorf("singleton stats: %+v", v)
	}
	if s.String() == "" {
		t.Error("summary must render")
	}
}
