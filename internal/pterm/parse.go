package pterm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pref"
)

// Parse reads a preference term in pterm syntax (see the package comment)
// and builds the corresponding preference.
func Parse(input string) (pref.Preference, error) {
	p := &parser{in: input}
	term, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) {
		return nil, p.errorf("unexpected trailing input %q", p.in[p.pos:])
	}
	return term, nil
}

// MustParse is Parse that panics on malformed terms.
func MustParse(input string) pref.Preference {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("pterm: at offset %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) lit(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.lit(s) {
		return p.errorf("expected %q", s)
	}
	return nil
}

func isWord(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// keyword consumes a case-insensitive constructor name.
func (p *parser) keyword(kw string) bool {
	p.skipSpace()
	n := len(kw)
	if p.pos+n > len(p.in) || !strings.EqualFold(p.in[p.pos:p.pos+n], kw) {
		return false
	}
	if p.pos+n < len(p.in) && isWord(p.in[p.pos+n]) {
		return false
	}
	p.pos += n
	return true
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && isWord(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected identifier")
	}
	return p.in[start:p.pos], nil
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.in) && (p.in[p.pos] == '-' || p.in[p.pos] == '+') {
		p.pos++
	}
	seenDot := false
	for p.pos < len(p.in) && (p.in[p.pos] >= '0' && p.in[p.pos] <= '9' || p.in[p.pos] == '.' && !seenDot || p.in[p.pos] == 'e' || p.in[p.pos] == 'E') {
		if p.in[p.pos] == '.' {
			seenDot = true
		}
		p.pos++
	}
	if p.pos == start {
		return 0, p.errorf("expected number")
	}
	return strconv.ParseFloat(p.in[start:p.pos], 64)
}

// value parses 'string', number, true or false. Numbers without a
// fractional part load as int64 so POS sets round-trip integer members.
func (p *parser) value() (pref.Value, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '\'' {
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.in) {
			if p.in[p.pos] == '\'' {
				if p.pos+1 < len(p.in) && p.in[p.pos+1] == '\'' {
					sb.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return sb.String(), nil
			}
			sb.WriteByte(p.in[p.pos])
			p.pos++
		}
		return nil, p.errorf("unterminated string")
	}
	if p.keyword("true") {
		return true, nil
	}
	if p.keyword("false") {
		return false, nil
	}
	n, err := p.number()
	if err != nil {
		return nil, err
	}
	if n == float64(int64(n)) {
		return int64(n), nil
	}
	return n, nil
}

// valueSet parses {v1, v2, …} (possibly empty).
func (p *parser) valueSet() ([]pref.Value, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []pref.Value
	p.skipSpace()
	if p.lit("}") {
		return out, nil
	}
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if !p.lit(",") {
			break
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseTerm parses prior := pareto ('&' pareto)*.
func (p *parser) parseTerm() (pref.Preference, error) {
	l, err := p.parsePareto()
	if err != nil {
		return nil, err
	}
	for p.lit("&") {
		r, err := p.parsePareto()
		if err != nil {
			return nil, err
		}
		l = pref.Prioritized(l, r)
	}
	return l, nil
}

// parsePareto parses unit (('><' | '⊗') unit)*.
func (p *parser) parsePareto() (pref.Preference, error) {
	l, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	for p.lit("><") || p.lit("⊗") {
		r, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		l = pref.Pareto(l, r)
	}
	return l, nil
}

func (p *parser) parseUnit() (pref.Preference, error) {
	p.skipSpace()
	switch {
	case p.keyword("POSNEG"):
		return p.parseTwoSets(func(attr string, a, b []pref.Value) (pref.Preference, error) {
			return pref.POSNEG(attr, a, b)
		})
	case p.keyword("POSPOS"):
		return p.parseTwoSets(func(attr string, a, b []pref.Value) (pref.Preference, error) {
			return pref.POSPOS(attr, a, b)
		})
	case p.keyword("POS"):
		return p.parseOneSet(func(attr string, vs []pref.Value) pref.Preference {
			return pref.POS(attr, vs...)
		})
	case p.keyword("NEG"):
		return p.parseOneSet(func(attr string, vs []pref.Value) pref.Preference {
			return pref.NEG(attr, vs...)
		})
	case p.keyword("EXPLICIT"):
		return p.parseExplicit()
	case p.keyword("AROUND"):
		return p.parseAround()
	case p.keyword("BETWEEN"):
		return p.parseBetween()
	case p.keyword("LOWEST"):
		attr, err := p.parseAttrArg()
		if err != nil {
			return nil, err
		}
		return pref.LOWEST(attr), nil
	case p.keyword("HIGHEST"):
		attr, err := p.parseAttrArg()
		if err != nil {
			return nil, err
		}
		return pref.HIGHEST(attr), nil
	case p.keyword("DUAL"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return pref.Dual(inner), nil
	case p.keyword("INTERSECT"):
		return p.parsePair(func(a, b pref.Preference) (pref.Preference, error) {
			return pref.Intersection(a, b)
		})
	case p.keyword("UNION"):
		return p.parsePair(func(a, b pref.Preference) (pref.Preference, error) {
			return pref.DisjointUnion(a, b)
		})
	case p.keyword("GROUPBY"):
		return p.parseGroupBy()
	case p.keyword("RANK"):
		return p.parseRank()
	case p.keyword("ANTICHAINSET"):
		return p.parseOneSet(func(attr string, vs []pref.Value) pref.Preference {
			return pref.AntiChainSet(attr, vs...)
		})
	case p.keyword("ANTICHAIN"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		attrs, err := p.attrSet()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return pref.AntiChain(attrs...), nil
	case p.lit("("):
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, p.errorf("expected a preference constructor")
}

func (p *parser) parseAttrArg() (string, error) {
	if err := p.expect("("); err != nil {
		return "", err
	}
	attr, err := p.ident()
	if err != nil {
		return "", err
	}
	if err := p.expect(")"); err != nil {
		return "", err
	}
	return attr, nil
}

func (p *parser) parseOneSet(build func(string, []pref.Value) pref.Preference) (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	vs, err := p.valueSet()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return build(attr, vs), nil
}

func (p *parser) parseTwoSets(build func(string, []pref.Value, []pref.Value) (pref.Preference, error)) (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	a, err := p.valueSet()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	b, err := p.valueSet()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return build(attr, a, b)
}

func (p *parser) parseExplicit() (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var edges []pref.Edge
	p.skipSpace()
	if !p.lit("}") {
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			worse, err := p.value()
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			better, err := p.value()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			edges = append(edges, pref.Edge{Worse: worse, Better: better})
			if !p.lit(",") {
				break
			}
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pref.EXPLICIT(attr, edges)
}

func (p *parser) parseAround() (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	z, err := p.number()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pref.AROUND(attr, z), nil
}

func (p *parser) parseBetween() (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	if err := p.expect("["); err != nil {
		return nil, err
	}
	lo, err := p.number()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	up, err := p.number()
	if err != nil {
		return nil, err
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pref.BETWEEN(attr, lo, up)
}

func (p *parser) parsePair(build func(a, b pref.Preference) (pref.Preference, error)) (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	a, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	b, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return build(a, b)
}

func (p *parser) attrSet() ([]string, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var attrs []string
	for {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
		if !p.lit(",") {
			break
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return attrs, nil
}

func (p *parser) parseGroupBy() (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attrs, err := p.attrSet()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	inner, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pref.GroupBy(attrs, inner), nil
}

func (p *parser) parseRank() (pref.Preference, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect("["); err != nil {
		return nil, err
	}
	var weights []float64
	for {
		w, err := p.number()
		if err != nil {
			return nil, err
		}
		weights = append(weights, w)
		if !p.lit(",") {
			break
		}
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	var parts []pref.Scorer
	for {
		u, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		s, ok := u.(pref.Scorer)
		if !ok {
			return nil, p.errorf("RANK parts must be SCORE-substitutable preferences, got %s", u)
		}
		parts = append(parts, s)
		if !p.lit(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pref.RankWeighted(weights, parts...)
}
