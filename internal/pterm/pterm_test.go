package pterm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/pref"
)

func TestMarshalBaseConstructors(t *testing.T) {
	cases := []struct {
		p    pref.Preference
		want string
	}{
		{pref.POS("color", "yellow", "green"), "POS(color, {'yellow', 'green'})"},
		{pref.NEG("color", "gray"), "NEG(color, {'gray'})"},
		{pref.MustPOSNEG("c", []pref.Value{"a"}, []pref.Value{"b"}), "POSNEG(c, {'a'}; {'b'})"},
		{pref.MustPOSPOS("c", []pref.Value{"a"}, []pref.Value{"b"}), "POSPOS(c, {'a'}; {'b'})"},
		{pref.AROUND("price", 40000), "AROUND(price, 40000)"},
		{pref.MustBETWEEN("d", 7, 14), "BETWEEN(d, [7, 14])"},
		{pref.LOWEST("price"), "LOWEST(price)"},
		{pref.HIGHEST("power"), "HIGHEST(power)"},
		{pref.AntiChain("a", "b"), "ANTICHAIN({a, b})"},
		{pref.AntiChainSet("a", "x"), "ANTICHAINSET(a, {'x'})"},
		{pref.Dual(pref.LOWEST("p")), "DUAL(LOWEST(p))"},
		{pref.POS("n", int64(1), 2.5, true), "POS(n, {1, 2.5, true})"},
	}
	for _, c := range cases {
		got, err := Marshal(c.p)
		if err != nil {
			t.Errorf("Marshal(%s): %v", c.p, err)
			continue
		}
		if got != c.want {
			t.Errorf("Marshal(%s) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestMarshalComplexTerms(t *testing.T) {
	term := pref.Prioritized(
		pref.NEG("color", "gray"),
		pref.Pareto(pref.LOWEST("price"), pref.AROUND("hp", 100)),
	)
	got := MustMarshal(term)
	want := "NEG(color, {'gray'}) & (LOWEST(price) >< AROUND(hp, 100))"
	if got != want {
		t.Errorf("Marshal = %q, want %q", got, want)
	}
}

func TestMarshalErrorsOnOpaqueFunctions(t *testing.T) {
	if _, err := Marshal(pref.SCORE("a", "f", func(pref.Value) float64 { return 0 })); err == nil {
		t.Error("SCORE is not serializable")
	}
	opaque := pref.Rank("F", pref.WeightedSum(1), pref.HIGHEST("a"))
	if _, err := Marshal(opaque); err == nil {
		t.Error("rank(F) without recorded weights is not serializable")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustMarshal must panic on unserializable terms")
		}
	}()
	MustMarshal(opaque)
}

func TestParseRoundTripExamples(t *testing.T) {
	sources := []string{
		"POS(color, {'yellow', 'green'})",
		"NEG(color, {'gray'})",
		"POSNEG(color, {'blue'}; {'gray', 'red'})",
		"POSPOS(cat, {'cabriolet'}; {'roadster'})",
		"EXPLICIT(color, {('green', 'yellow'), ('yellow', 'white')})",
		"EXPLICIT(color, {})",
		"AROUND(price, 40000)",
		"BETWEEN(d, [7, 14])",
		"LOWEST(price)",
		"HIGHEST(power)",
		"DUAL(LOWEST(price))",
		"ANTICHAIN({make})",
		"ANTICHAINSET(color, {'x', 'y'})",
		"LOWEST(a) >< LOWEST(b)",
		"LOWEST(a) & LOWEST(b) & HIGHEST(c)",
		"NEG(color, {'gray'}) & (LOWEST(price) >< AROUND(hp, 100))",
		"INTERSECT(LOWEST(a) & LOWEST(b), LOWEST(b) & LOWEST(a))",
		"GROUPBY({make}; AROUND(price, 40000))",
		"RANK([1, 2]; AROUND(a, 0), HIGHEST(b))",
		"POS(n, {1, 2.5, true, -3})",
	}
	for _, src := range sources {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		out, err := Marshal(p)
		if err != nil {
			t.Errorf("Marshal(Parse(%q)): %v", src, err)
			continue
		}
		p2, err := Parse(out)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", out, err)
			continue
		}
		out2, _ := Marshal(p2)
		if out != out2 {
			t.Errorf("canonical form not a fixpoint: %q vs %q", out, out2)
		}
	}
}

func TestParseUnicodeParetoAlias(t *testing.T) {
	a := MustParse("LOWEST(a) ⊗ LOWEST(b)")
	b := MustParse("LOWEST(a) >< LOWEST(b)")
	if a.String() != b.String() {
		t.Error("⊗ and >< must parse identically")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"POS(color)",
		"POS(color, {'a'",
		"WRONG(color, {'a'})",
		"LOWEST(a) >< ",
		"LOWEST(a) &",
		"BETWEEN(a, [3])",
		"BETWEEN(a, [5, 3])", // inverted interval rejected by constructor
		"POSNEG(a, {'x'}; {'x'})",
		"EXPLICIT(a, {('x', 'x')})",
		"RANK([1]; POS(a, {'x'}))", // POS is not a Scorer
		"RANK([1, 2]; LOWEST(a))",  // weight arity mismatch
		"LOWEST(a) trailing",
		"GROUPBY(make; LOWEST(a))",
		"INTERSECT(LOWEST(a), LOWEST(b))", // attr mismatch rejected
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("Parse(%q) must fail", b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic")
		}
	}()
	MustParse("garbage(")
}

// TestRoundTripPreservesSemantics: Marshal→Parse must produce a preference
// equivalent to the original on random universes.
func TestRoundTripPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		g := algebra.NewGen(seed, 4, "a", "b", "c")
		universe := g.Universe(10)
		term := g.Term(2)
		src, err := Marshal(term)
		if err != nil {
			return true // generator produced an opaque rank/score; vacuous
		}
		back, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: Parse(%q) failed: %v", seed, src, err)
			return false
		}
		if w := algebra.FindInequivalence(term, back, universe); w != nil {
			t.Logf("seed %d: %q round-tripped inequivalent: %s", seed, src, w.Reason)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestParseWhitespaceAndEscapes(t *testing.T) {
	p := MustParse("  POS( color ,\n{ 'it''s' } ) ")
	pos, ok := p.(*pref.Pos)
	if !ok {
		t.Fatal("wrong type")
	}
	if !pos.PosSet().Contains("it's") {
		t.Error("escaped quote lost")
	}
}

func TestRankRoundTripWeights(t *testing.T) {
	r, err := pref.RankWeighted([]float64{1, 2}, pref.AROUND("a", 0), pref.HIGHEST("b"))
	if err != nil {
		t.Fatal(err)
	}
	src := MustMarshal(r)
	if !strings.Contains(src, "[1, 2]") {
		t.Errorf("weights missing from %q", src)
	}
	back := MustParse(src)
	rb, ok := back.(*pref.RankPref)
	if !ok {
		t.Fatal("wrong type")
	}
	ws, ok := rb.Weights()
	if !ok || len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Errorf("weights = %v", ws)
	}
	// Scores agree.
	tup := pref.MapTuple{"a": int64(3), "b": int64(4)}
	if r.ScoreOf(tup) != rb.ScoreOf(tup) {
		t.Error("round-tripped rank scores differ")
	}
}

func TestProductMarshals(t *testing.T) {
	prod := pref.ParetoProduct(pref.LOWEST("a"), pref.LOWEST("b"), pref.HIGHEST("c"))
	src := MustMarshal(prod)
	// Products serialize as nested binary Pareto (equivalent on disjoint
	// attribute sets).
	back := MustParse(src)
	g := algebra.NewGen(1, 4, "a", "b", "c")
	if w := algebra.FindInequivalence(prod, back, g.Universe(12)); w != nil {
		t.Errorf("product round trip inequivalent: %s", w.Reason)
	}
}

func TestParseErrorPaths(t *testing.T) {
	bad := []string{
		"POS(, {'a'})",
		"POS(color {'a'})",
		"POS(color, 'a')",
		"POSNEG(color, {'a'} {'b'})",
		"POSNEG(color, {'a'}; {'b'}",
		"EXPLICIT(color, {('a' 'b')})",
		"EXPLICIT(color, ('a','b'))",
		"AROUND(color)",
		"AROUND(color, 'x')",
		"BETWEEN(color, 3)",
		"DUAL LOWEST(a)",
		"DUAL(LOWEST(a)",
		"UNION(LOWEST(a))",
		"INTERSECT(LOWEST(a) LOWEST(a))",
		"GROUPBY({}; LOWEST(a))",
		"GROUPBY({m} LOWEST(a))",
		"RANK(1; LOWEST(a))",
		"RANK([1; LOWEST(a))",
		"RANK([1]; )",
		"ANTICHAIN(a)",
		"ANTICHAINSET(a, 'x')",
		"POS(a, {'unterminated)",
		"LOWEST(a) >< >< LOWEST(b)",
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("Parse(%q) must fail", b)
		}
	}
}

func TestMarshalLinearSumUnsupported(t *testing.T) {
	sum := pref.MustLinearSum("s", pref.AntiChainSet("x", "a"), pref.AntiChainSet("y", "b"))
	if _, err := Marshal(sum); err == nil {
		t.Error("linear sums carry anonymous domains and must not marshal")
	}
}

func TestMarshalInsideAccumulationPropagatesErrors(t *testing.T) {
	score := pref.SCORE("a", "f", func(pref.Value) float64 { return 0 })
	for _, p := range []pref.Preference{
		pref.Pareto(score, pref.LOWEST("b")),
		pref.Prioritized(pref.LOWEST("b"), score),
		pref.Dual(score),
		pref.MustIntersection(score, pref.LOWEST("a")),
		pref.MustDisjointUnion(pref.LOWEST("a"), score),
	} {
		if _, err := Marshal(p); err == nil {
			t.Errorf("Marshal(%s) must propagate the SCORE error", p)
		}
	}
}

func TestValueTextFallback(t *testing.T) {
	// Non-standard value types render as quoted strings.
	type odd struct{ X int }
	if got := valueText(odd{1}); !strings.HasPrefix(got, "'") {
		t.Errorf("fallback rendering %q", got)
	}
	if got := valueText(false); got != "false" {
		t.Errorf("bool rendering %q", got)
	}
}
