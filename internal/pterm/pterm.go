// Package pterm gives preference terms a textual syntax: Marshal renders a
// preference to a canonical string and Parse reads it back. This is the
// substrate for the persistent preference repository of §7's roadmap
// ("a persistent preference repository") — preferences become storable,
// diffable artifacts instead of opaque in-memory values.
//
// The syntax mirrors the paper's notation, ASCII-friendly:
//
//	POS(color, {'yellow', 'green'}) & (LOWEST(price) >< AROUND(hp, 100))
//	POSNEG(color, {'blue'}; {'gray', 'red'})
//	EXPLICIT(color, {('green', 'yellow'), ('yellow', 'white')})
//	RANK([1, 2]; AROUND(price, 40000), HIGHEST(power))
//	GROUPBY({make}; AROUND(price, 40000))
//
// '&' is prioritized accumulation (lowest precedence), '><' (or '⊗') is
// Pareto accumulation, DUAL(…), INTERSECT(…, …) and UNION(…, …) cover the
// remaining constructors. SCORE preferences and rank(F) terms with opaque
// combining functions carry Go functions and cannot be serialized; Marshal
// reports them as errors (RANK built via pref.RankWeighted round-trips).
package pterm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pref"
)

// Marshal renders a preference term in the pterm syntax. It returns an
// error for preferences carrying opaque Go functions (SCORE, rank(F) with
// a non-weighted-sum F) and for linear sums (their domains are anonymous).
func Marshal(p pref.Preference) (string, error) {
	var b strings.Builder
	if err := marshal(&b, p, false); err != nil {
		return "", err
	}
	return b.String(), nil
}

func marshal(b *strings.Builder, p pref.Preference, nested bool) error {
	switch q := p.(type) {
	case *pref.Pos:
		fmt.Fprintf(b, "POS(%s, %s)", q.Attr(), setText(q.PosSet()))
	case *pref.Neg:
		fmt.Fprintf(b, "NEG(%s, %s)", q.Attr(), setText(q.NegSet()))
	case *pref.PosNeg:
		fmt.Fprintf(b, "POSNEG(%s, %s; %s)", q.Attr(), setText(q.PosSet()), setText(q.NegSet()))
	case *pref.PosPos:
		fmt.Fprintf(b, "POSPOS(%s, %s; %s)", q.Attr(), setText(q.Pos1Set()), setText(q.Pos2Set()))
	case *pref.Explicit:
		parts := make([]string, len(q.Edges()))
		for i, e := range q.Edges() {
			parts[i] = fmt.Sprintf("(%s, %s)", valueText(e.Worse), valueText(e.Better))
		}
		fmt.Fprintf(b, "EXPLICIT(%s, {%s})", q.Attr(), strings.Join(parts, ", "))
	case *pref.Around:
		fmt.Fprintf(b, "AROUND(%s, %s)", q.Attr(), formatNum(q.Target()))
	case *pref.Between:
		lo, up := q.Bounds()
		fmt.Fprintf(b, "BETWEEN(%s, [%s, %s])", q.Attr(), formatNum(lo), formatNum(up))
	case *pref.Lowest:
		fmt.Fprintf(b, "LOWEST(%s)", q.Attr())
	case *pref.Highest:
		fmt.Fprintf(b, "HIGHEST(%s)", q.Attr())
	case *pref.AntiChainPref:
		if q.Domain() != nil {
			fmt.Fprintf(b, "ANTICHAINSET(%s, %s)", q.Attrs()[0], setText(q.Domain()))
		} else {
			fmt.Fprintf(b, "ANTICHAIN({%s})", strings.Join(q.Attrs(), ", "))
		}
	case *pref.DualPref:
		b.WriteString("DUAL(")
		if err := marshal(b, q.Inner(), false); err != nil {
			return err
		}
		b.WriteString(")")
	case *pref.ParetoPref:
		if nested {
			b.WriteString("(")
		}
		if err := marshalBinary(b, q.Left(), " >< ", q.Right()); err != nil {
			return err
		}
		if nested {
			b.WriteString(")")
		}
	case *pref.PrioritizedPref:
		if nested {
			b.WriteString("(")
		}
		if err := marshalBinary(b, q.Left(), " & ", q.Right()); err != nil {
			return err
		}
		if nested {
			b.WriteString(")")
		}
	case *pref.IntersectionPref:
		b.WriteString("INTERSECT(")
		if err := marshal(b, q.Left(), false); err != nil {
			return err
		}
		b.WriteString(", ")
		if err := marshal(b, q.Right(), false); err != nil {
			return err
		}
		b.WriteString(")")
	case *pref.DisjointUnionPref:
		b.WriteString("UNION(")
		if err := marshal(b, q.Left(), false); err != nil {
			return err
		}
		b.WriteString(", ")
		if err := marshal(b, q.Right(), false); err != nil {
			return err
		}
		b.WriteString(")")
	case *pref.RankPref:
		weights, ok := q.Weights()
		if !ok {
			return fmt.Errorf("pterm: rank(F) with an opaque combining function is not serializable; build it with pref.RankWeighted")
		}
		ws := make([]string, len(weights))
		for i, w := range weights {
			ws[i] = formatNum(w)
		}
		fmt.Fprintf(b, "RANK([%s]; ", strings.Join(ws, ", "))
		for i, part := range q.Parts() {
			if i > 0 {
				b.WriteString(", ")
			}
			if err := marshal(b, part, true); err != nil {
				return err
			}
		}
		b.WriteString(")")
	case *pref.ProductPref:
		if nested {
			b.WriteString("(")
		}
		for i, part := range q.Parts() {
			if i > 0 {
				b.WriteString(" >< ")
			}
			if err := marshal(b, part, true); err != nil {
				return err
			}
		}
		if nested {
			b.WriteString(")")
		}
	default:
		return fmt.Errorf("pterm: preference %T is not serializable", p)
	}
	return nil
}

func marshalBinary(b *strings.Builder, l pref.Preference, op string, r pref.Preference) error {
	if err := marshal(b, l, true); err != nil {
		return err
	}
	b.WriteString(op)
	return marshal(b, r, true)
}

func setText(s *pref.ValueSet) string {
	parts := make([]string, 0, s.Len())
	for _, v := range s.Values() {
		parts = append(parts, valueText(v))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func valueText(v pref.Value) string {
	switch t := v.(type) {
	case string:
		return "'" + strings.ReplaceAll(t, "'", "''") + "'"
	case bool:
		return strconv.FormatBool(t)
	}
	if n, ok := pref.Numeric(v); ok {
		return formatNum(n)
	}
	return fmt.Sprintf("'%v'", v)
}

func formatNum(n float64) string {
	return strconv.FormatFloat(n, 'g', -1, 64)
}

// MustMarshal is Marshal that panics on unserializable terms.
func MustMarshal(p pref.Preference) string {
	s, err := Marshal(p)
	if err != nil {
		panic(err)
	}
	return s
}
