package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pref"
	"repro/internal/relation"
)

func scoreRel(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Row{rng.Float64(), rng.Float64()})
	}
	return r
}

func testRank() *pref.RankPref {
	return pref.Rank("F", pref.WeightedSum(1, 2), pref.HIGHEST("a"), pref.HIGHEST("b"))
}

func TestTopKOrderingAndTies(t *testing.T) {
	r := relation.New("R", relation.MustSchema(relation.Column{Name: "a", Type: relation.Int})).MustInsert(
		relation.Row{int64(5)},
		relation.Row{int64(9)},
		relation.Row{int64(9)}, // tie with row 1: lower row index first
		relation.Row{int64(1)},
	)
	p := pref.Rank("F", pref.WeightedSum(1), pref.HIGHEST("a"))
	got := TopK(p, r, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Row != 1 || got[1].Row != 2 || got[2].Row != 0 {
		t.Errorf("rows = %v", got)
	}
	if got[0].Score != 9 {
		t.Errorf("score = %v", got[0].Score)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := scoreRel(rng, 5)
	p := testRank()
	if got := TopK(p, r, 0); got != nil {
		t.Error("k=0 returns nil")
	}
	if got := TopK(p, r, -3); got != nil {
		t.Error("negative k returns nil")
	}
	if got := TopK(p, r, 100); len(got) != 5 {
		t.Errorf("k beyond n returns all rows, got %d", len(got))
	}
	empty := relation.New("E", r.Schema())
	if got := TopK(p, empty, 3); len(got) != 0 {
		t.Error("empty relation yields no results")
	}
}

// TestThresholdAgreesWithHeap: the threshold algorithm must produce the
// exact TopK ranking for monotone F, on random inputs.
func TestThresholdAgreesWithHeap(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := scoreRel(rng, 10+rng.Intn(200))
		p := testRank()
		k := 1 + rng.Intn(10)
		want := TopK(p, r, k)
		got, _ := ThresholdTopK(p, r, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Row != want[i].Row || got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestThresholdSavesAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := scoreRel(rng, 5000)
	p := testRank()
	_, stats := ThresholdTopK(p, r, 5)
	if stats.Scanned >= r.Len() {
		t.Errorf("threshold scanned all %d rows", stats.Scanned)
	}
	if stats.SortedAccesses == 0 || stats.RandomAccesses == 0 {
		t.Error("access statistics must be populated")
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	p := testRank()
	empty := relation.New("E", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	if got, _ := ThresholdTopK(p, empty, 3); len(got) != 0 {
		t.Error("empty relation")
	}
	if got, _ := ThresholdTopK(p, empty, 0); got != nil {
		t.Error("k=0")
	}
	rng := rand.New(rand.NewSource(2))
	r := scoreRel(rng, 4)
	if got, _ := ThresholdTopK(p, r, 10); len(got) != 4 {
		t.Errorf("k beyond n returns all rows, got %d", len(got))
	}
}

func TestThresholdStopsEarlyOnSkewedData(t *testing.T) {
	// One row dominates both lists: the algorithm should stop after very
	// few rounds.
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	r.MustInsert(relation.Row{100.0, 100.0})
	for i := 0; i < 1000; i++ {
		r.MustInsert(relation.Row{float64(i%10) * 0.1, float64(i%7) * 0.1})
	}
	got, stats := ThresholdTopK(testRank(), r, 1)
	if len(got) != 1 || got[0].Row != 0 {
		t.Fatalf("winner = %v", got)
	}
	if stats.Scanned > 20 {
		t.Errorf("skewed data should stop almost immediately, scanned %d", stats.Scanned)
	}
}
