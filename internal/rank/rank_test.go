package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pref"
	"repro/internal/relation"
)

func scoreRel(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Row{rng.Float64(), rng.Float64()})
	}
	return r
}

func testRank() *pref.RankPref {
	return pref.Rank("F", pref.WeightedSum(1, 2), pref.HIGHEST("a"), pref.HIGHEST("b"))
}

func TestTopKOrderingAndTies(t *testing.T) {
	r := relation.New("R", relation.MustSchema(relation.Column{Name: "a", Type: relation.Int})).MustInsert(
		relation.Row{int64(5)},
		relation.Row{int64(9)},
		relation.Row{int64(9)}, // tie with row 1: lower row index first
		relation.Row{int64(1)},
	)
	p := pref.Rank("F", pref.WeightedSum(1), pref.HIGHEST("a"))
	got := TopK(p, r, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Row != 1 || got[1].Row != 2 || got[2].Row != 0 {
		t.Errorf("rows = %v", got)
	}
	if got[0].Score != 9 {
		t.Errorf("score = %v", got[0].Score)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := scoreRel(rng, 5)
	p := testRank()
	if got := TopK(p, r, 0); got != nil {
		t.Error("k=0 returns nil")
	}
	if got := TopK(p, r, -3); got != nil {
		t.Error("negative k returns nil")
	}
	if got := TopK(p, r, 100); len(got) != 5 {
		t.Errorf("k beyond n returns all rows, got %d", len(got))
	}
	empty := relation.New("E", r.Schema())
	if got := TopK(p, empty, 3); len(got) != 0 {
		t.Error("empty relation yields no results")
	}
}

// TestThresholdAgreesWithHeap: the threshold algorithm must produce the
// exact TopK ranking for monotone F, on random inputs.
func TestThresholdAgreesWithHeap(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := scoreRel(rng, 10+rng.Intn(200))
		p := testRank()
		k := 1 + rng.Intn(10)
		want := TopK(p, r, k)
		got, _ := ThresholdTopK(p, r, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Row != want[i].Row || got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestThresholdWithStringScoreDimension: a rank(F) mixing a numeric chain
// with a SCORE feature over a string column must agree between the heap
// scan and the threshold algorithm — the ordinal-coded columnar path the
// compiled form takes for discrete dimensions.
func TestThresholdWithStringScoreDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	colors := []string{"red", "blue", "gray", "green", "black"}
	colorScore := map[string]float64{"red": 5, "blue": 3, "gray": 0, "green": 2, "black": 1}
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "color", Type: relation.String},
		relation.Column{Name: "a", Type: relation.Float},
	))
	for i := 0; i < 500; i++ {
		r.MustInsert(relation.Row{colors[rng.Intn(len(colors))], rng.Float64() * 10})
	}
	p := pref.Rank("F", pref.WeightedSum(1, 1),
		pref.SCORE("color", "colorScore", func(v pref.Value) float64 {
			s, _ := v.(string)
			return colorScore[s]
		}),
		pref.HIGHEST("a"))
	for _, k := range []int{1, 5, 17} {
		want := TopK(p, r, k)
		got, stats := ThresholdTopK(p, r, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d rank %d: %v != %v", k, i, got[i], want[i])
			}
		}
		if stats.Scanned == 0 {
			t.Fatal("stats must be populated")
		}
	}
}

// TestTopKOnSubset: the index-chained entry point must rank exactly the
// candidate subset, returning base-relation row positions.
func TestTopKOnSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := scoreRel(rng, 200)
	p := testRank()
	var idx []int
	for i := 0; i < r.Len(); i++ {
		if i%3 != 0 {
			idx = append(idx, i)
		}
	}
	got := TopKOn(p, r, 7, idx)
	// Reference: materialize the subset and rank it, then map back.
	sub := r.Pick(idx)
	want := TopK(p, sub, 7)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Row != idx[want[i].Row] || got[i].Score != want[i].Score {
			t.Fatalf("rank %d: got %v, want row %d score %v", i, got[i], idx[want[i].Row], want[i].Score)
		}
	}
	// A highly selective subset takes the subset-proportional interpreted
	// scorer instead of a whole-relation bind; results must agree with the
	// compiled whole-relation ranking restricted to the same rows.
	tiny := idx[:4]
	got = TopKOn(p, r, 2, tiny)
	wantTiny := TopK(p, r.Pick(tiny), 2)
	for i := range wantTiny {
		if got[i].Row != tiny[wantTiny[i].Row] || got[i].Score != wantTiny[i].Score {
			t.Fatalf("tiny subset rank %d: got %v, want row %d score %v",
				i, got[i], tiny[wantTiny[i].Row], wantTiny[i].Score)
		}
	}
}

// TestScoreCacheReuseAndInvalidation: keyed Scorer features are served
// from the score-vector cache on repeat, a row mutation strands the
// entry, and results stay correct either way.
func TestScoreCacheReuseAndInvalidation(t *testing.T) {
	ResetScoreCache()
	defer ResetScoreCache()
	rng := rand.New(rand.NewSource(43))
	r := scoreRel(rng, 300)
	p := testRank() // parts HIGHEST(a), HIGHEST(b) carry faithful keys
	first, _ := ThresholdTopK(p, r, 5)
	if h, m := ScoreCacheStats(); h != 0 || m == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", h, m)
	}
	repeat, _ := ThresholdTopK(p, r, 5)
	if h, _ := ScoreCacheStats(); h == 0 {
		t.Fatal("repeated run must hit the score cache")
	}
	for i := range first {
		if first[i] != repeat[i] {
			t.Fatalf("cached run diverged: %v vs %v", repeat, first)
		}
	}
	r.MustInsert(relation.Row{100.0, 100.0})
	got, _ := ThresholdTopK(p, r, 1)
	if len(got) != 1 || got[0].Row != r.Len()-1 {
		t.Fatalf("stale vector: inserted best row must win, got %v", got)
	}
}

func TestThresholdSavesAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := scoreRel(rng, 5000)
	p := testRank()
	_, stats := ThresholdTopK(p, r, 5)
	if stats.Scanned >= r.Len() {
		t.Errorf("threshold scanned all %d rows", stats.Scanned)
	}
	if stats.SortedAccesses == 0 || stats.RandomAccesses == 0 {
		t.Error("access statistics must be populated")
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	p := testRank()
	empty := relation.New("E", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	if got, _ := ThresholdTopK(p, empty, 3); len(got) != 0 {
		t.Error("empty relation")
	}
	if got, _ := ThresholdTopK(p, empty, 0); got != nil {
		t.Error("k=0")
	}
	rng := rand.New(rand.NewSource(2))
	r := scoreRel(rng, 4)
	if got, _ := ThresholdTopK(p, r, 10); len(got) != 4 {
		t.Errorf("k beyond n returns all rows, got %d", len(got))
	}
}

func TestThresholdStopsEarlyOnSkewedData(t *testing.T) {
	// One row dominates both lists: the algorithm should stop after very
	// few rounds.
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	r.MustInsert(relation.Row{100.0, 100.0})
	for i := 0; i < 1000; i++ {
		r.MustInsert(relation.Row{float64(i%10) * 0.1, float64(i%7) * 0.1})
	}
	got, stats := ThresholdTopK(testRank(), r, 1)
	if len(got) != 1 || got[0].Row != 0 {
		t.Fatalf("winner = %v", got)
	}
	if stats.Scanned > 20 {
		t.Errorf("skewed data should stop almost immediately, scanned %d", stats.Scanned)
	}
}
