// Package rank implements the ranked query model of §6.2: numerical
// accumulation rank(F) evaluated under "k-best" semantics. Since rank(F)
// usually constructs chains, a BMO query would return a single best object;
// multi-feature engines therefore retrieve the k best objects, including
// non-maximal ones. Two physical strategies are provided: a heap-based
// full scan and a threshold algorithm over per-feature sorted lists in the
// spirit of Quick-Combine [GBK00], which stops sorted access once the
// threshold proves no unseen object can enter the top k.
package rank

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/pref"
	"repro/internal/relation"
)

// Result is one ranked answer: a row index in the source relation with its
// combined score.
type Result struct {
	Row   int
	Score float64
}

// TopK returns the k best rows of R under the Scorer p (highest combined
// score first; ties broken by ascending row index for determinism). It
// performs one full scan maintaining a size-k min-heap: O(n log k).
func TopK(p pref.Scorer, r *relation.Relation, k int) []Result {
	if k <= 0 {
		return nil
	}
	h := &resultHeap{}
	heap.Init(h)
	for i := 0; i < r.Len(); i++ {
		s := p.ScoreOf(r.Tuple(i))
		if h.Len() < k {
			heap.Push(h, Result{i, s})
			continue
		}
		if worse(h.items[0], Result{i, s}) {
			h.items[0] = Result{i, s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}

// worse reports a ranks strictly below b (lower score, or equal score and
// higher row index).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Row > b.Row
}

// resultHeap is a min-heap on (score, -row).
type resultHeap struct{ items []Result }

func (h *resultHeap) Len() int           { return len(h.items) }
func (h *resultHeap) Less(i, j int) bool { return worse(h.items[i], h.items[j]) }
func (h *resultHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resultHeap) Push(x any)         { h.items = append(h.items, x.(Result)) }
func (h *resultHeap) Pop() (out any) {
	n := len(h.items)
	out = h.items[n-1]
	h.items = h.items[:n-1]
	return
}

// Stats reports the access behaviour of a threshold-algorithm run.
type Stats struct {
	// SortedAccesses counts rows popped from the per-feature sorted lists.
	SortedAccesses int
	// RandomAccesses counts score lookups for features other than the one
	// accessed in sorted order.
	RandomAccesses int
	// Scanned counts distinct rows whose combined score was computed.
	Scanned int
}

// ThresholdTopK computes the k best rows under rank(F) using the threshold
// algorithm over per-feature score lists sorted in descending order. F must
// be monotone in each argument (the usual requirement of [GBK00]/Fagin):
// then once the k-th best combined score seen so far meets or exceeds
// F(next scores at the list heads), no unseen row can qualify and the scan
// stops. Returns the same ranking as TopK plus access statistics.
func ThresholdTopK(p *pref.RankPref, r *relation.Relation, k int) ([]Result, Stats) {
	var stats Stats
	if k <= 0 || r.Len() == 0 {
		return nil, stats
	}
	parts := p.Parts()
	m := len(parts)
	n := r.Len()
	// Materialize per-feature scores and sorted access lists.
	scores := make([][]float64, m)
	lists := make([][]int, m)
	for f := 0; f < m; f++ {
		scores[f] = make([]float64, n)
		lists[f] = make([]int, n)
		for i := 0; i < n; i++ {
			scores[f][i] = parts[f].ScoreOf(r.Tuple(i))
			lists[f][i] = i
		}
		fs := scores[f]
		sort.SliceStable(lists[f], func(a, b int) bool {
			return fs[lists[f][a]] > fs[lists[f][b]]
		})
	}
	combine := func(vec []float64) float64 {
		return evalRankCombine(p, vec)
	}
	seen := make(map[int]struct{}, 2*k)
	h := &resultHeap{}
	heap.Init(h)
	depth := 0
	for depth < n {
		// One round of sorted access on every list at the current depth.
		for f := 0; f < m; f++ {
			row := lists[f][depth]
			stats.SortedAccesses++
			if _, dup := seen[row]; dup {
				continue
			}
			seen[row] = struct{}{}
			vec := make([]float64, m)
			for g := 0; g < m; g++ {
				vec[g] = scores[g][row]
				if g != f {
					stats.RandomAccesses++
				}
			}
			stats.Scanned++
			res := Result{row, combine(vec)}
			if h.Len() < k {
				heap.Push(h, res)
			} else if worse(h.items[0], res) {
				h.items[0] = res
				heap.Fix(h, 0)
			}
		}
		depth++
		// Threshold: best combined score any unseen row could reach.
		tvec := make([]float64, m)
		for f := 0; f < m; f++ {
			if depth < n {
				tvec[f] = scores[f][lists[f][depth]]
			} else {
				tvec[f] = math.Inf(-1)
			}
		}
		if h.Len() == k && !worse(h.items[0], Result{Row: -1, Score: combine(tvec)}) {
			break
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, stats
}

// evalRankCombine applies the RankPref's combining function to a score
// vector. RankPref exposes only tuple-level scoring, so the combine step
// re-derives F through a probe tuple carrying precomputed part scores.
func evalRankCombine(p *pref.RankPref, vec []float64) float64 {
	return p.Combine(vec)
}
