// Package rank implements the ranked query model of §6.2: numerical
// accumulation rank(F) evaluated under "k-best" semantics. Since rank(F)
// usually constructs chains, a BMO query would return a single best object;
// multi-feature engines therefore retrieve the k best objects, including
// non-maximal ones. Two physical strategies are provided: a heap-based
// full scan and a threshold algorithm over per-feature sorted lists in the
// spirit of Quick-Combine [GBK00], which stops sorted access once the
// threshold proves no unseen object can enter the top k.
package rank

import (
	"container/heap"
	"math"
	"slices"

	"repro/internal/boundcache"
	"repro/internal/pref"
	"repro/internal/relation"
)

// Result is one ranked answer: a row index in the source relation with its
// combined score.
type Result struct {
	Row   int
	Score float64
}

// TopK returns the k best rows of R under the Scorer p (highest combined
// score first; ties broken by ascending row index for determinism). It
// performs one scan maintaining a size-k min-heap: O(n log k).
func TopK(p pref.Scorer, r *relation.Relation, k int) []Result {
	return TopKOn(p, r, k, nil)
}

// TopKOn is TopK over the candidate row positions of R (idx == nil means
// every row); returned Row values are positions in R. An index-chained
// ranked query — WHERE bitmap feeding the k-best model — therefore scores
// candidates straight off the base relation without materializing a
// subset. Scoring runs over the compiled combined-score vector when the
// term compiles (flat column reads, ordinal-coded discrete dimensions);
// tuple-at-a-time ScoreOf otherwise.
func TopKOn(p pref.Scorer, r *relation.Relation, k int, idx []int) []Result {
	if k <= 0 {
		return nil
	}
	score := scoreFn(p, r, idx)
	n := r.Len()
	if idx != nil {
		n = len(idx)
	}
	h := &resultHeap{}
	heap.Init(h)
	for pos := 0; pos < n; pos++ {
		i := pos
		if idx != nil {
			i = idx[pos]
		}
		s := score(i)
		if h.Len() < k {
			heap.Push(h, Result{i, s})
			continue
		}
		if worse(h.items[0], Result{i, s}) {
			h.items[0] = Result{i, s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}

// scoreCacheCap bounds the number of cached score vectors.
const scoreCacheCap = 64

// scoreCache holds materialized score vectors of keyed Scorer terms per
// (relation, version, term) — the ranked layer's instance of the shared
// bound-form cache, so repeated TOP-k queries over an unchanged catalog
// relation are bind-free and engine.EvictRelation releases the vectors
// of a dropped relation. rank(F) terms carry opaque combining functions
// and have no faithful cache key; they bypass the cache and bind per
// call (one columnar pass, not a tuple walk per feature).
var scoreCache = boundcache.New[[]float64](scoreCacheCap)

// scoreVecKey returns the cache key of a Scorer's vector over r, ok=false
// when the term is keyless or the source uncacheable (ephemeral
// intermediates, like every other bound-form cache).
func scoreVecKey(p pref.Scorer, r *relation.Relation) (boundcache.Key, bool) {
	if r.Ephemeral() {
		return boundcache.Key{}, false
	}
	term, keyed := pref.CacheKey(p)
	if !keyed {
		return boundcache.Key{}, false
	}
	return boundcache.Key{Src: r, Version: r.Version(), Term: "rank:" + term}, true
}

// compiledScoreVec materializes the term's score vector over the whole
// relation, or nil when the term is outside the compilable fragment.
func compiledScoreVec(p pref.Scorer, r *relation.Relation) []float64 {
	if !pref.Compilable(p) {
		return nil
	}
	c, ok := pref.Compile(p, r)
	if !ok {
		return nil
	}
	return c.ScoreVec(p)
}

// cachedScoreVec is compiledScoreVec through scoreCache; negative
// outcomes cache as nil.
func cachedScoreVec(p pref.Scorer, r *relation.Relation) []float64 {
	key, ok := scoreVecKey(p, r)
	if !ok {
		return compiledScoreVec(p, r)
	}
	if vec, hit := scoreCache.Get(key); hit {
		return vec
	}
	vec := compiledScoreVec(p, r)
	scoreCache.Put(key, vec)
	return vec
}

// scoreFn returns a row-position scorer over R: the compiled score vector
// of the term when one is cached or worth binding, per-row ScoreOf
// through the tuple view otherwise. Binding costs a pass over the WHOLE
// relation, so a cold bind only pays off when the candidate subset is a
// meaningful fraction of it — a highly selective WHERE keeps the
// subset-proportional interpreted path; an already-cached vector is free
// to use at any selectivity.
func scoreFn(p pref.Scorer, r *relation.Relation, idx []int) func(int) float64 {
	if key, ok := scoreVecKey(p, r); ok {
		if vec, hit := scoreCache.Peek(key); hit && vec != nil {
			return func(i int) float64 { return vec[i] }
		}
	}
	// Compiled binding is ~CompiledBindAdvantage× cheaper per row than
	// interpreted scoring; below that fraction of the relation, scoring
	// just the subset wins.
	if idx == nil || len(idx)*CompiledBindAdvantage >= r.Len() {
		if vec := cachedScoreVec(p, r); vec != nil {
			return func(i int) float64 { return vec[i] }
		}
	}
	return func(i int) float64 { return p.ScoreOf(r.Tuple(i)) }
}

// CompiledBindAdvantage estimates how much cheaper one compiled-bind row
// is than one interpreted ScoreOf call (vector copy vs schema lookup +
// boxing + type switch), mirroring the engine cost model's
// compiledSpeedup. The psql BUT ONLY dispatch shares it, so the two
// compiled-vs-interpreted gates stay in sync.
const CompiledBindAdvantage = 12

// ScoreCacheStats returns the cumulative score-vector cache hit and miss
// counts.
func ScoreCacheStats() (hits, misses uint64) {
	return scoreCache.Stats()
}

// ResetScoreCache empties the score-vector cache and zeroes its counters;
// tests and benchmarks use it to measure cold binds.
func ResetScoreCache() {
	scoreCache.Reset()
}

// worse reports a ranks strictly below b (lower score, or equal score and
// higher row index).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Row > b.Row
}

// resultHeap is a min-heap on (score, -row).
type resultHeap struct{ items []Result }

func (h *resultHeap) Len() int           { return len(h.items) }
func (h *resultHeap) Less(i, j int) bool { return worse(h.items[i], h.items[j]) }
func (h *resultHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resultHeap) Push(x any)         { h.items = append(h.items, x.(Result)) }
func (h *resultHeap) Pop() (out any) {
	n := len(h.items)
	out = h.items[n-1]
	h.items = h.items[:n-1]
	return
}

// Stats reports the access behaviour of a threshold-algorithm run.
type Stats struct {
	// SortedAccesses counts rows popped from the per-feature sorted lists.
	SortedAccesses int
	// RandomAccesses counts score lookups for features other than the one
	// accessed in sorted order.
	RandomAccesses int
	// Scanned counts distinct rows whose combined score was computed.
	Scanned int
}

// ThresholdTopK computes the k best rows under rank(F) using the threshold
// algorithm over per-feature score lists sorted in descending order. F must
// be monotone in each argument (the usual requirement of [GBK00]/Fagin):
// then once the k-th best combined score seen so far meets or exceeds
// F(next scores at the list heads), no unseen row can qualify and the scan
// stops. Returns the same ranking as TopK plus access statistics.
func ThresholdTopK(p *pref.RankPref, r *relation.Relation, k int) ([]Result, Stats) {
	var stats Stats
	if k <= 0 || r.Len() == 0 {
		return nil, stats
	}
	parts := p.Parts()
	m := len(parts)
	n := r.Len()
	// Materialize per-feature scores and sorted access lists: each
	// feature's vector is a flat column served from the score cache when
	// the part has a faithful key (SCORE dimensions ordinal-coded: the
	// scoring function runs once per distinct value, the win for string
	// features), and the sorted access lists order over contiguous
	// float64 arrays — with a per-row ScoreOf walk as the fallback.
	scores := make([][]float64, m)
	lists := make([][]int, m)
	for f := 0; f < m; f++ {
		// Shared with the cache / compiled form; read-only from here on.
		scores[f] = cachedScoreVec(parts[f], r)
		if scores[f] == nil {
			fs := make([]float64, n)
			for i := 0; i < n; i++ {
				fs[i] = parts[f].ScoreOf(r.Tuple(i))
			}
			scores[f] = fs
		}
		lists[f] = make([]int, n)
		for i := 0; i < n; i++ {
			lists[f][i] = i
		}
		fs := scores[f]
		slices.SortStableFunc(lists[f], func(a, b int) int {
			switch {
			case fs[a] > fs[b]:
				return -1
			case fs[a] < fs[b]:
				return 1
			}
			return 0
		})
	}
	combine := func(vec []float64) float64 {
		return evalRankCombine(p, vec)
	}
	seen := make(map[int]struct{}, 2*k)
	h := &resultHeap{}
	heap.Init(h)
	depth := 0
	scratch := make([]float64, m) // combine() does not retain its argument
	for depth < n {
		// One round of sorted access on every list at the current depth.
		for f := 0; f < m; f++ {
			row := lists[f][depth]
			stats.SortedAccesses++
			if _, dup := seen[row]; dup {
				continue
			}
			seen[row] = struct{}{}
			for g := 0; g < m; g++ {
				scratch[g] = scores[g][row]
				if g != f {
					stats.RandomAccesses++
				}
			}
			stats.Scanned++
			res := Result{row, combine(scratch)}
			if h.Len() < k {
				heap.Push(h, res)
			} else if worse(h.items[0], res) {
				h.items[0] = res
				heap.Fix(h, 0)
			}
		}
		depth++
		// Threshold: best combined score any unseen row could reach.
		for f := 0; f < m; f++ {
			if depth < n {
				scratch[f] = scores[f][lists[f][depth]]
			} else {
				scratch[f] = math.Inf(-1)
			}
		}
		if h.Len() == k && !worse(h.items[0], Result{Row: -1, Score: combine(scratch)}) {
			break
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, stats
}

// evalRankCombine applies the RankPref's combining function to a score
// vector. RankPref exposes only tuple-level scoring, so the combine step
// re-derives F through a probe tuple carrying precomputed part scores.
func evalRankCombine(p *pref.RankPref, vec []float64) float64 {
	return p.Combine(vec)
}
