// Package rank implements the ranked query model of §6.2: numerical
// accumulation rank(F) evaluated under "k-best" semantics. Since rank(F)
// usually constructs chains, a BMO query would return a single best object;
// multi-feature engines therefore retrieve the k best objects, including
// non-maximal ones. Two physical strategies are provided: a heap-based
// full scan and a threshold algorithm over per-feature sorted lists in the
// spirit of Quick-Combine [GBK00], which stops sorted access once the
// threshold proves no unseen object can enter the top k.
package rank

import (
	"container/heap"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"repro/internal/boundcache"
	"repro/internal/pref"
	"repro/internal/relation"
)

// Result is one ranked answer: a row index in the source relation with its
// combined score.
type Result struct {
	Row   int
	Score float64
}

// TopK returns the k best rows of R under the Scorer p (highest combined
// score first; ties broken by ascending row index for determinism). It
// performs one scan maintaining a size-k min-heap: O(n log k).
func TopK(p pref.Scorer, r *relation.Relation, k int) []Result {
	return TopKOn(p, r, k, nil)
}

// TopKOn is TopK over the candidate row positions of R (idx == nil means
// every row); returned Row values are positions in R. An index-chained
// ranked query — WHERE bitmap feeding the k-best model — therefore scores
// candidates straight off the base relation without materializing a
// subset. Scoring runs over the compiled combined-score vector when the
// term compiles (flat column reads, ordinal-coded discrete dimensions);
// tuple-at-a-time ScoreOf otherwise.
func TopKOn(p pref.Scorer, r *relation.Relation, k int, idx []int) []Result {
	if k <= 0 {
		return nil
	}
	score := scoreFn(p, r, idx)
	n := r.Len()
	if idx != nil {
		n = len(idx)
	}
	h := &resultHeap{}
	heap.Init(h)
	for pos := 0; pos < n; pos++ {
		i := pos
		if idx != nil {
			i = idx[pos]
		}
		s := score(i)
		if h.Len() < k {
			heap.Push(h, Result{i, s})
			continue
		}
		if worse(h.items[0], Result{i, s}) {
			h.items[0] = Result{i, s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}

// scoreCacheCap bounds the number of cached score vectors.
const scoreCacheCap = 64

// scoreCache holds materialized score vectors of keyed Scorer terms per
// (relation, version, term) — the ranked layer's instance of the shared
// bound-form cache, so repeated TOP-k queries over an unchanged catalog
// relation are bind-free and engine.EvictRelation releases the vectors
// of a dropped relation. rank(F) terms carry opaque combining functions
// and have no faithful cache key; they bypass the cache and bind per
// call (one columnar pass, not a tuple walk per feature) — unless the
// caller gives them a session identity through Register.
var scoreCache = boundcache.New[[]float64](scoreCacheCap)

// termKeyOf returns the faithful cache key of a Scorer term: the
// canonical pref.CacheKey encoding, or — for terms carrying opaque Go
// functions — the session token of a registered Handle (see Register).
func termKeyOf(p pref.Scorer) (string, bool) {
	if h, ok := p.(*Handle); ok {
		return h.token, true
	}
	return pref.CacheKey(p)
}

// rankKey builds the bound-form cache key of one derived artifact kind
// ("rank" score vectors, "rankperm" sorted-access permutations) of a
// Scorer over r; ok=false when the term is keyless or the source
// uncacheable (ephemeral intermediates, like every other bound-form
// cache).
func rankKey(p pref.Scorer, r *relation.Relation, kind string) (boundcache.Key, bool) {
	if r.Ephemeral() {
		return boundcache.Key{}, false
	}
	term, keyed := termKeyOf(p)
	if !keyed {
		return boundcache.Key{}, false
	}
	return boundcache.Key{Src: r, Version: r.Version(), Term: kind + ":" + term}, true
}

// scoreVecKey returns the cache key of a Scorer's vector over r.
func scoreVecKey(p pref.Scorer, r *relation.Relation) (boundcache.Key, bool) {
	return rankKey(p, r, "rank")
}

// compiledScoreVec materializes the term's score vector over the whole
// relation, or nil when the term is outside the compilable fragment.
// Registered handles compile their wrapped term.
func compiledScoreVec(p pref.Scorer, r *relation.Relation) []float64 {
	p = unwrap(p)
	if !pref.Compilable(p) {
		return nil
	}
	c, ok := pref.Compile(p, r)
	if !ok {
		return nil
	}
	return c.ScoreVec(p)
}

// cachedScoreVec is compiledScoreVec through scoreCache; negative
// outcomes cache as nil.
func cachedScoreVec(p pref.Scorer, r *relation.Relation) []float64 {
	key, ok := scoreVecKey(p, r)
	if !ok {
		return compiledScoreVec(p, r)
	}
	if vec, hit := scoreCache.Get(key); hit {
		return vec
	}
	vec := compiledScoreVec(p, r)
	scoreCache.Put(key, vec)
	return vec
}

// scoreFn returns a row-position scorer over R: the compiled score vector
// of the term when one is cached or worth binding, per-row ScoreOf
// through the tuple view otherwise. Binding costs a pass over the WHOLE
// relation, so a cold bind only pays off when the candidate subset is a
// meaningful fraction of it — a highly selective WHERE keeps the
// subset-proportional interpreted path; an already-cached vector is free
// to use at any selectivity.
func scoreFn(p pref.Scorer, r *relation.Relation, idx []int) func(int) float64 {
	if key, ok := scoreVecKey(p, r); ok {
		if vec, hit := scoreCache.Peek(key); hit && vec != nil {
			return func(i int) float64 { return vec[i] }
		}
	}
	// Compiled binding is ~CompiledBindAdvantage× cheaper per row than
	// interpreted scoring; below that fraction of the relation, scoring
	// just the subset wins.
	if idx == nil || len(idx)*CompiledBindAdvantage >= r.Len() {
		if vec := cachedScoreVec(p, r); vec != nil {
			return func(i int) float64 { return vec[i] }
		}
	}
	return func(i int) float64 { return p.ScoreOf(r.Tuple(i)) }
}

// CompiledBindAdvantage estimates how much cheaper one compiled-bind row
// is than one interpreted ScoreOf call (vector copy vs schema lookup +
// boxing + type switch), mirroring the engine cost model's
// compiledSpeedup. The psql BUT ONLY dispatch shares it, so the two
// compiled-vs-interpreted gates stay in sync.
const CompiledBindAdvantage = 12

// ScoreCacheStats returns the cumulative score-vector cache hit and miss
// counts.
func ScoreCacheStats() (hits, misses uint64) {
	return scoreCache.Stats()
}

// ResetScoreCache empties the score-vector cache and zeroes its counters;
// tests and benchmarks use it to measure cold binds.
func ResetScoreCache() {
	scoreCache.Reset()
}

// permCacheCap bounds the number of cached sorted-access permutations.
const permCacheCap = 64

// permCache holds the descending-score visit permutations the threshold
// algorithm sorts its per-feature access lists by, cached alongside each
// score vector per (relation, version, term): the sort is the dominant
// per-query cost once the vectors themselves come from the cache, so a
// repeated ThresholdTopK over an unchanged relation is sort-free. Keys
// share the score cache's term encoding with a distinct kind prefix, so
// engine.EvictRelation's registry sweep releases permutations too, and
// any row mutation strands them via the version.
var permCache = boundcache.New[[]int](permCacheCap)

// cachedSortedPerm returns the sorted-access permutation of a feature's
// score vector: row positions ordered by descending score, ties by
// ascending position. Served from permCache for keyed terms over
// cacheable relations; sorted fresh otherwise.
func cachedSortedPerm(p pref.Scorer, r *relation.Relation, scores []float64) []int {
	key, ok := rankKey(p, r, "rankperm")
	if ok {
		if perm, hit := permCache.Get(key); hit && perm != nil {
			return perm
		}
	}
	perm := sortScorePerm(scores)
	if ok {
		permCache.Put(key, perm)
	}
	return perm
}

// sortScorePerm builds the descending-score permutation; the stable sort
// pins ascending-position tie order, the determinism ThresholdTopK's
// access statistics rely on.
func sortScorePerm(scores []float64) []int {
	perm := make([]int, len(scores))
	for i := range perm {
		perm[i] = i
	}
	slices.SortStableFunc(perm, func(a, b int) int {
		switch {
		case scores[a] > scores[b]:
			return -1
		case scores[a] < scores[b]:
			return 1
		}
		return 0
	})
	return perm
}

// PermCacheStats returns the cumulative sorted-permutation cache hit and
// miss counts.
func PermCacheStats() (hits, misses uint64) {
	return permCache.Stats()
}

// ResetPermCache empties the sorted-permutation cache and zeroes its
// counters.
func ResetPermCache() {
	permCache.Reset()
}

// Handle gives a Scorer term a session-scoped identity the bound-form
// caches can key by. rank(F) terms (and raw SCORE leaves) carry opaque
// Go functions, so they have no canonical cache key and would re-bind
// their score vectors and sorted lists on every execution; registering
// the term once hands back a token-carrying wrapper that scores exactly
// like the original but hits the caches on every repeat. The token is
// valid for the process lifetime; registering the same term twice
// yields two independent identities.
type Handle struct {
	pref.Scorer
	token string
}

// handleSeq numbers session handles.
var handleSeq atomic.Uint64

// Register wraps a Scorer term in a session-scoped Handle. The caller
// must not mutate the term's behaviour afterwards (the token asserts
// that repeated evaluations are semantically identical — that is what
// makes it a faithful cache key).
func Register(p pref.Scorer) *Handle {
	return &Handle{Scorer: p, token: fmt.Sprintf("handle#%d", handleSeq.Add(1))}
}

// Token returns the session token; diagnostics only.
func (h *Handle) Token() string { return h.token }

// unwrap returns the underlying term of a registered handle (handles do
// not nest: Register always wraps the term it is given).
func unwrap(p pref.Scorer) pref.Scorer {
	if h, ok := p.(*Handle); ok {
		return h.Scorer
	}
	return p
}

// TopK returns the k best rows under the registered term, serving the
// combined score vector from the cache on every repeat.
func (h *Handle) TopK(r *relation.Relation, k int) []Result {
	return TopKOn(h, r, k, nil)
}

// TopKOn is TopK over a candidate subset (idx == nil means every row).
func (h *Handle) TopKOn(r *relation.Relation, k int, idx []int) []Result {
	return TopKOn(h, r, k, idx)
}

// ThresholdTopK runs the threshold algorithm under the registered term
// when it wraps a rank(F) accumulation: every feature's score vector and
// sorted-access permutation is cached under the handle's token (features
// with their own canonical key keep it), so repeat queries are bind- and
// sort-free. A handle wrapping a plain Scorer has no per-feature lists
// and degrades to one cached heap scan with trivial access statistics.
func (h *Handle) ThresholdTopK(r *relation.Relation, k int) ([]Result, Stats) {
	rp, ok := unwrap(h).(*pref.RankPref)
	if !ok {
		out := h.TopK(r, k)
		return out, Stats{SortedAccesses: r.Len(), Scanned: r.Len()}
	}
	parts := rp.Parts()
	feats := make([]pref.Scorer, len(parts))
	for f, part := range parts {
		if _, keyed := pref.CacheKey(part); keyed {
			feats[f] = part
		} else {
			// Derive a per-feature identity from the handle token, so
			// opaque features amortize under it.
			feats[f] = &Handle{Scorer: part, token: fmt.Sprintf("%s/f%d", h.token, f)}
		}
	}
	return thresholdTopK(feats, rp.Combine, r, k)
}

// worse reports a ranks strictly below b (lower score, or equal score and
// higher row index).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Row > b.Row
}

// resultHeap is a min-heap on (score, -row).
type resultHeap struct{ items []Result }

func (h *resultHeap) Len() int           { return len(h.items) }
func (h *resultHeap) Less(i, j int) bool { return worse(h.items[i], h.items[j]) }
func (h *resultHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resultHeap) Push(x any)         { h.items = append(h.items, x.(Result)) }
func (h *resultHeap) Pop() (out any) {
	n := len(h.items)
	out = h.items[n-1]
	h.items = h.items[:n-1]
	return
}

// Stats reports the access behaviour of a threshold-algorithm run.
type Stats struct {
	// SortedAccesses counts rows popped from the per-feature sorted lists.
	SortedAccesses int
	// RandomAccesses counts score lookups for features other than the one
	// accessed in sorted order.
	RandomAccesses int
	// Scanned counts distinct rows whose combined score was computed.
	Scanned int
}

// ThresholdTopK computes the k best rows under rank(F) using the threshold
// algorithm over per-feature score lists sorted in descending order. F must
// be monotone in each argument (the usual requirement of [GBK00]/Fagin):
// then once the k-th best combined score seen so far meets or exceeds
// F(next scores at the list heads), no unseen row can qualify and the scan
// stops. Returns the same ranking as TopK plus access statistics.
func ThresholdTopK(p *pref.RankPref, r *relation.Relation, k int) ([]Result, Stats) {
	parts := p.Parts()
	feats := make([]pref.Scorer, len(parts))
	copy(feats, parts)
	return thresholdTopK(feats, p.Combine, r, k)
}

// thresholdTopK is the threshold-algorithm core shared by ThresholdTopK
// and registered handles: per-feature scorers plus the monotone
// combining function.
func thresholdTopK(parts []pref.Scorer, combine func([]float64) float64, r *relation.Relation, k int) ([]Result, Stats) {
	var stats Stats
	if k <= 0 || r.Len() == 0 {
		return nil, stats
	}
	m := len(parts)
	n := r.Len()
	// Materialize per-feature scores and sorted access lists: each
	// feature's vector is a flat column served from the score cache when
	// the part has a faithful key (SCORE dimensions ordinal-coded: the
	// scoring function runs once per distinct value, the win for string
	// features), and the sorted access lists come from the permutation
	// cache — repeated threshold queries over an unchanged relation are
	// sort-free — with a per-row ScoreOf walk as the cold fallback.
	scores := make([][]float64, m)
	lists := make([][]int, m)
	for f := 0; f < m; f++ {
		// Shared with the cache / compiled form; read-only from here on.
		scores[f] = cachedScoreVec(parts[f], r)
		if scores[f] == nil {
			fs := make([]float64, n)
			for i := 0; i < n; i++ {
				fs[i] = parts[f].ScoreOf(r.Tuple(i))
			}
			scores[f] = fs
		}
		lists[f] = cachedSortedPerm(parts[f], r, scores[f])
	}
	seen := make(map[int]struct{}, 2*k)
	h := &resultHeap{}
	heap.Init(h)
	depth := 0
	scratch := make([]float64, m) // combine() does not retain its argument
	for depth < n {
		// One round of sorted access on every list at the current depth.
		for f := 0; f < m; f++ {
			row := lists[f][depth]
			stats.SortedAccesses++
			if _, dup := seen[row]; dup {
				continue
			}
			seen[row] = struct{}{}
			for g := 0; g < m; g++ {
				scratch[g] = scores[g][row]
				if g != f {
					stats.RandomAccesses++
				}
			}
			stats.Scanned++
			res := Result{row, combine(scratch)}
			if h.Len() < k {
				heap.Push(h, res)
			} else if worse(h.items[0], res) {
				h.items[0] = res
				heap.Fix(h, 0)
			}
		}
		depth++
		// Threshold: best combined score any unseen row could reach.
		for f := 0; f < m; f++ {
			if depth < n {
				scratch[f] = scores[f][lists[f][depth]]
			} else {
				scratch[f] = math.Inf(-1)
			}
		}
		if h.Len() == k && !worse(h.items[0], Result{Row: -1, Score: combine(scratch)}) {
			break
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, stats
}
