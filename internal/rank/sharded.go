package rank

import (
	"container/heap"
	"math"

	"repro/internal/pref"
	"repro/internal/relation"
)

// Sharded ranked evaluation (§6.2 over a partitioned catalog). The k-best
// model distributes like BMO: the k best of a union are among the union
// of the per-shard k best, so every shard computes its local top-k off
// its own cached score vectors and a final heap merge keeps the global k.
// The threshold algorithm distributes through its sorted lists — each
// shard's per-feature list is a cached permutation, and the scan consumes
// the shard lists round-robin with the stopping threshold taken over the
// best unseen head of any shard.

// TopKSharded returns the k best rows of a sharded table under the
// Scorer p; Result.Row values are stable global row ids
// (relation.GlobalID).
func TopKSharded(p pref.Scorer, s *relation.Sharded, k int) []Result {
	return TopKShardedOn(p, s, k, nil)
}

// TopKShardedOn is TopKSharded over per-shard candidate subsets (sets ==
// nil, or a nil element, means every row of that shard). Every shard
// scans concurrently — scoring off its own cached compiled score vector
// — into a local k-heap; the merge pass heap-selects the global k from
// the ≤ k·shards local winners. Ties break by ascending global id, the
// sharded image of TopK's ascending-row rule.
func TopKShardedOn(p pref.Scorer, s *relation.Sharded, k int, sets [][]int) []Result {
	if k <= 0 {
		return nil
	}
	locals := make([][]Result, s.NumShards())
	relation.FanShards(s.NumShards(), func(i int) {
		var idx []int
		if sets != nil {
			idx = sets[i] // a nil element means every row of the shard
		}
		local := TopKOn(p, s.Shard(i), k, idx)
		for j := range local {
			local[j].Row = relation.GlobalID(i, local[j].Row)
		}
		locals[i] = local
	})
	h := &resultHeap{}
	heap.Init(h)
	for _, local := range locals {
		for _, res := range local {
			if h.Len() < k {
				heap.Push(h, res)
			} else if worse(h.items[0], res) {
				h.items[0] = res
				heap.Fix(h, 0)
			}
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}

// ThresholdTopKSharded computes the k best rows of a sharded table under
// rank(F) with the threshold algorithm. Per-feature sorted access runs
// over every shard's cached score vectors and sorted-access permutations
// (built concurrently on first use, cache-served afterwards), the shard
// lists are consumed round-robin — one sorted access per (feature,
// shard) per round — and the stopping threshold for each feature is the
// best unseen head across all shards, so the scan stops exactly when no
// unseen row of any shard can reach the k-th best combined score.
// Result.Row values are global row ids; Stats aggregates accesses across
// shards.
func ThresholdTopKSharded(p *pref.RankPref, s *relation.Sharded, k int) ([]Result, Stats) {
	var stats Stats
	if k <= 0 || s.Len() == 0 {
		return nil, stats
	}
	parts := p.Parts()
	m := len(parts)
	nShards := s.NumShards()
	scores := make([][][]float64, nShards) // [shard][feature][local]
	lists := make([][][]int, nShards)      // [shard][feature] sorted perm
	relation.FanShards(nShards, func(i int) {
		sh := s.Shard(i)
		n := sh.Len()
		scores[i] = make([][]float64, m)
		lists[i] = make([][]int, m)
		for f := 0; f < m; f++ {
			scores[i][f] = cachedScoreVec(parts[f], sh)
			if scores[i][f] == nil {
				fs := make([]float64, n)
				for j := 0; j < n; j++ {
					fs[j] = parts[f].ScoreOf(sh.Tuple(j))
				}
				scores[i][f] = fs
			}
			lists[i][f] = cachedSortedPerm(parts[f], sh, scores[i][f])
		}
	})
	depth := make([]int, nShards) // per-shard consumption depth
	seen := make(map[int]struct{}, 2*k)
	h := &resultHeap{}
	heap.Init(h)
	scratch := make([]float64, m)
	for {
		advanced := false
		// One round: for every feature, one sorted access per shard, in
		// shard order (the round-robin).
		for f := 0; f < m; f++ {
			for i := 0; i < nShards; i++ {
				if depth[i] >= s.Shard(i).Len() {
					continue
				}
				local := lists[i][f][depth[i]]
				stats.SortedAccesses++
				gid := relation.GlobalID(i, local)
				if _, dup := seen[gid]; dup {
					continue
				}
				seen[gid] = struct{}{}
				for g := 0; g < m; g++ {
					scratch[g] = scores[i][g][local]
					if g != f {
						stats.RandomAccesses++
					}
				}
				stats.Scanned++
				res := Result{gid, p.Combine(scratch)}
				if h.Len() < k {
					heap.Push(h, res)
				} else if worse(h.items[0], res) {
					h.items[0] = res
					heap.Fix(h, 0)
				}
			}
		}
		for i := 0; i < nShards; i++ {
			if depth[i] < s.Shard(i).Len() {
				depth[i]++
				advanced = true
			}
		}
		if !advanced {
			break
		}
		// Threshold: the best combined score any unseen row of any shard
		// could reach — per feature, the maximum unseen head.
		for f := 0; f < m; f++ {
			best := math.Inf(-1)
			for i := 0; i < nShards; i++ {
				if depth[i] < s.Shard(i).Len() {
					if v := scores[i][f][lists[i][f][depth[i]]]; v > best {
						best = v
					}
				}
			}
			scratch[f] = best
		}
		if h.Len() == k && !worse(h.items[0], Result{Row: -1, Score: p.Combine(scratch)}) {
			break
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, stats
}
