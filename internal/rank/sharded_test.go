package rank

import (
	"math/rand"
	"testing"

	"repro/internal/pref"
	"repro/internal/relation"
)

// shardedScoreRel builds a flat relation plus its sharded twin.
func shardedScoreRel(rng *rand.Rand, n, shards int) (*relation.Relation, *relation.Sharded) {
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "oid", Type: relation.Int},
		relation.Column{Name: "a", Type: relation.Float},
		relation.Column{Name: "b", Type: relation.Float},
	))
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Row{i, rng.Float64(), rng.Float64()})
	}
	s, err := relation.ShardRelation(r, shards, relation.ByHash("oid"))
	if err != nil {
		panic(err)
	}
	return r, s
}

// TestTopKShardedAgreement: the sharded top-k must return the same score
// ranking as the flat scan for every shard count, down to the row
// identity when scores are distinct (continuous random scores make ties
// measure-zero).
func TestTopKShardedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := testRank()
	for _, shards := range []int{1, 2, 3, 5, 8} {
		flat, s := shardedScoreRel(rng, 400, shards)
		want := TopK(p, flat, 10)
		got := TopKSharded(p, s, 10)
		if len(got) != len(want) {
			t.Fatalf("%d shards: %d results, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i].Score != want[i].Score {
				t.Fatalf("%d shards: rank %d score %v, want %v", shards, i, got[i].Score, want[i].Score)
			}
			if s.Row(got[i].Row)[0] != flat.Row(want[i].Row)[0] {
				t.Fatalf("%d shards: rank %d row oid %v, want %v",
					shards, i, s.Row(got[i].Row)[0], flat.Row(want[i].Row)[0])
			}
		}
	}
}

// TestTopKShardedOnSubset: per-shard candidate subsets rank like the
// matching flat subset.
func TestTopKShardedOnSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	flat, s := shardedScoreRel(rng, 300, 4)
	p := testRank()
	keep := func(row relation.Row) bool { return row[1].(float64) < 0.5 }
	var idx []int
	for i := 0; i < flat.Len(); i++ {
		if keep(flat.Row(i)) {
			idx = append(idx, i)
		}
	}
	sets := make([][]int, s.NumShards())
	for i := 0; i < s.NumShards(); i++ {
		sets[i] = []int{}
		for j := 0; j < s.Shard(i).Len(); j++ {
			if keep(s.Shard(i).Row(j)) {
				sets[i] = append(sets[i], j)
			}
		}
	}
	want := TopKOn(p, flat, 7, idx)
	got := TopKShardedOn(p, s, 7, sets)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score || s.Row(got[i].Row)[0] != flat.Row(want[i].Row)[0] {
			t.Fatalf("rank %d: got %v (oid %v), want %v (oid %v)",
				i, got[i], s.Row(got[i].Row)[0], want[i], flat.Row(want[i].Row)[0])
		}
	}
}

// TestThresholdTopKShardedAgreement: the round-robin sharded threshold
// scan returns the flat threshold ranking with sane aggregate access
// statistics, and stops early on large inputs.
func TestThresholdTopKShardedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := testRank()
	for _, shards := range []int{1, 2, 4, 8} {
		flat, s := shardedScoreRel(rng, 2000, shards)
		want, _ := ThresholdTopK(p, flat, 5)
		got, stats := ThresholdTopKSharded(p, s, 5)
		if len(got) != len(want) {
			t.Fatalf("%d shards: %d results, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i].Score != want[i].Score {
				t.Fatalf("%d shards: rank %d score %v, want %v", shards, i, got[i].Score, want[i].Score)
			}
			if s.Row(got[i].Row)[0] != flat.Row(want[i].Row)[0] {
				t.Fatalf("%d shards: rank %d row mismatch", shards, i)
			}
		}
		if stats.Scanned == 0 || stats.Scanned > flat.Len() {
			t.Fatalf("%d shards: scanned %d of %d", shards, stats.Scanned, flat.Len())
		}
		if stats.Scanned == flat.Len() {
			t.Fatalf("%d shards: threshold scan examined every row — no early stop", shards)
		}
	}
}

// TestSortedPermCacheReuseAndInvalidation is the satellite acceptance:
// repeated ThresholdTopK calls must be sort-free (permutation cache hit,
// no new miss) and a row mutation must strand the cached permutations.
func TestSortedPermCacheReuseAndInvalidation(t *testing.T) {
	ResetScoreCache()
	ResetPermCache()
	defer ResetScoreCache()
	defer ResetPermCache()
	rng := rand.New(rand.NewSource(31))
	r := scoreRel(rng, 500)
	p := testRank()
	first, _ := ThresholdTopK(p, r, 5)
	h0, m0 := PermCacheStats()
	if h0 != 0 || m0 != uint64(len(p.Parts())) {
		t.Fatalf("cold run: perm hits=%d misses=%d, want 0/%d", h0, m0, len(p.Parts()))
	}
	repeat, _ := ThresholdTopK(p, r, 5)
	h1, m1 := PermCacheStats()
	if m1 != m0 {
		t.Fatalf("repeat run must not re-sort: misses %d → %d", m0, m1)
	}
	if h1 != h0+uint64(len(p.Parts())) {
		t.Fatalf("repeat run must hit per feature: hits %d → %d", h0, h1)
	}
	for i := range first {
		if first[i] != repeat[i] {
			t.Fatalf("sort-free run diverged: %v vs %v", repeat, first)
		}
	}
	// A row mutation bumps the version: the stale permutations are
	// unreachable and the fresh sort sees the new row.
	r.MustInsert(relation.Row{100.0, 100.0})
	got, _ := ThresholdTopK(p, r, 1)
	if len(got) != 1 || got[0].Row != r.Len()-1 {
		t.Fatalf("stale permutation: inserted best row must win, got %v", got)
	}
	_, m2 := PermCacheStats()
	if m2 == m1 {
		t.Fatal("mutation must miss the permutation cache")
	}
}

// TestRegisterHandleReuse is the session-handle satellite: a rank(F)
// term has no faithful cache key, but a registered handle gives it one —
// repeated TOP-k and threshold queries reuse the cached score vectors
// and sorted lists, and a mutation still invalidates.
func TestRegisterHandleReuse(t *testing.T) {
	ResetScoreCache()
	ResetPermCache()
	defer ResetScoreCache()
	defer ResetPermCache()
	rng := rand.New(rand.NewSource(37))
	r := scoreRel(rng, 400)
	// Opaque parts: SCORE carries a Go function, so neither the term nor
	// its features have canonical keys.
	opaque := pref.Rank("F", pref.WeightedSum(2, 1),
		pref.SCORE("a", "id", func(v pref.Value) float64 { f, _ := pref.Numeric(v); return f }),
		pref.SCORE("b", "neg", func(v pref.Value) float64 { f, _ := pref.Numeric(v); return -f }),
	)
	want := TopK(opaque, r, 5)
	h := Register(opaque)
	got := h.TopK(r, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handle TopK diverged: %v vs %v", got, want)
		}
	}
	_, mCold := ScoreCacheStats()
	if mCold == 0 {
		t.Fatal("handle must key the combined score vector into the cache")
	}
	_, misses0 := ScoreCacheStats()
	if again := h.TopK(r, 5); again[0] != want[0] {
		t.Fatalf("repeat handle TopK diverged: %v", again)
	}
	if _, misses1 := ScoreCacheStats(); misses1 != misses0 {
		t.Fatalf("repeat handle TopK must not re-bind: misses %d→%d", misses0, misses1)
	}
	// Threshold under the handle: per-feature vectors and permutations
	// key under derived per-feature tokens.
	wantT, _ := ThresholdTopK(opaque, r, 5)
	gotT, _ := h.ThresholdTopK(r, 5)
	for i := range wantT {
		if gotT[i].Score != wantT[i].Score {
			t.Fatalf("handle threshold diverged: %v vs %v", gotT, wantT)
		}
	}
	hp0, mp0 := PermCacheStats()
	h.ThresholdTopK(r, 5)
	hp1, mp1 := PermCacheStats()
	if mp1 != mp0 || hp1 == hp0 {
		t.Fatalf("repeat handle threshold must be sort-free: perm hits %d→%d misses %d→%d", hp0, hp1, mp0, mp1)
	}
	// Two handles over one term are independent identities.
	h2 := Register(opaque)
	if h.Token() == h2.Token() {
		t.Fatal("independent registrations must carry distinct tokens")
	}
	// Mutation invalidates the handle's cached artifacts like any other.
	r.MustInsert(relation.Row{1000.0, 1000.0})
	if best := h.TopK(r, 1); len(best) != 1 || best[0].Row != r.Len()-1 {
		t.Fatalf("stale handle vector: inserted best row must win, got %v", best)
	}
}

// TestHandleOnPlainScorer: a handle wrapping a non-rank Scorer still
// ranks correctly and degrades ThresholdTopK to a heap scan.
func TestHandleOnPlainScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	r := scoreRel(rng, 100)
	h := Register(pref.HIGHEST("a"))
	want := TopK(pref.HIGHEST("a"), r, 3)
	got, stats := h.ThresholdTopK(r, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plain-scorer handle diverged: %v vs %v", got, want)
		}
	}
	if stats.Scanned != r.Len() {
		t.Fatalf("degraded scan must report a full pass, got %+v", stats)
	}
}
