package rank

import (
	"container/heap"
	"context"

	"repro/internal/faultinject"
	"repro/internal/pref"
	"repro/internal/relation"
)

// Ctx-aware ranked evaluation. The heap scan polls its context at a
// coarse stride (the engine's cancellation discipline: one masked
// counter increment per row, one channel poll per stride), and the
// sharded fan-out runs on relation.FanShardsCtx with per-shard fault
// handling under a relation.Robust policy. The k-best model degrades
// under PolicyPartial exactly like BMO: the k best of the responsive
// shards' union are exact over what they cover — a missing shard can
// only mean absent answers, never wrong ones.

// cancelStride matches the engine's poll stride (power of two).
const cancelStride = 1024

// TopKCtx is TopK under a context: the scan observes cancellation and
// deadlines cooperatively and returns the context's error instead of a
// result.
func TopKCtx(ctx context.Context, p pref.Scorer, r *relation.Relation, k int) ([]Result, error) {
	return TopKOnCtx(ctx, p, r, k, nil)
}

// TopKOnCtx is TopKOn under a context (idx == nil means every row).
func TopKOnCtx(ctx context.Context, p pref.Scorer, r *relation.Relation, k int, idx []int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	done := ctx.Done()
	score := scoreFn(p, r, idx)
	n := r.Len()
	if idx != nil {
		n = len(idx)
	}
	h := &resultHeap{}
	heap.Init(h)
	for pos := 0; pos < n; pos++ {
		if done != nil && pos&(cancelStride-1) == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		i := pos
		if idx != nil {
			i = idx[pos]
		}
		s := score(i)
		if h.Len() < k {
			heap.Push(h, Result{i, s})
			continue
		}
		if worse(h.items[0], Result{i, s}) {
			h.items[0] = Result{i, s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, nil
}

// TopKShardedCtx is TopKSharded under a context and a fault-tolerance
// policy; Result.Row values are global row ids. Shards scan under
// relation.FanShardsCtx — panic containment, per-shard deadlines under
// rb.ShardTimeout — and per-shard failures resolve under rb.Policy: a
// strict failure returns a *relation.ShardError, a partial result
// merges the responsive shards' local top-k and reports the missing
// shard set.
func TopKShardedCtx(ctx context.Context, p pref.Scorer, s *relation.Sharded, k int, sets [][]int, rb relation.Robust) ([]Result, *relation.Partial, error) {
	if k <= 0 {
		return nil, nil, ctx.Err()
	}
	locals := make([][]Result, s.NumShards())
	errs := relation.FanShardsCtx(ctx, s.NumShards(), rb.ShardTimeout, func(ictx context.Context, i int) error {
		if err := faultinject.Invoke(ictx, s, i); err != nil {
			return err
		}
		var idx []int
		if sets != nil {
			idx = sets[i] // a nil element means every row of the shard
		}
		local, err := TopKOnCtx(ictx, p, s.Shard(i), k, idx)
		if err != nil {
			return err
		}
		for j := range local {
			local[j].Row = relation.GlobalID(i, local[j].Row)
		}
		locals[i] = local
		return nil
	})
	part, err := relation.CollectPartial(rb.Policy, errs)
	if err != nil {
		return nil, nil, err
	}
	h := &resultHeap{}
	heap.Init(h)
	for i, local := range locals {
		if errs[i] != nil {
			// Abandoned workers may still write their slot; only slots with
			// a nil error are ordered after the worker's completion.
			continue
		}
		for _, res := range local {
			if h.Len() < k {
				heap.Push(h, res)
			} else if worse(h.items[0], res) {
				h.items[0] = res
				heap.Fix(h, 0)
			}
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, part, nil
}
