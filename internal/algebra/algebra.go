// Package algebra implements the preference algebra of §4: equivalence of
// preference terms (Definition 13), the law collection of Propositions 2
// and 3, the discrimination theorem (Proposition 4), the non-discrimination
// theorem (Proposition 5), term simplification, and the sub-constructor
// hierarchy of §3.4. Equivalence over infinite domains is undecidable in
// general, so all checkers operate on finite tuple universes — exactly the
// setting of the paper's better-than graphs — and back the property-based
// test suite.
package algebra

import (
	"fmt"

	"repro/internal/pref"
)

// Equivalent reports P1 ≡ P2 over the finite tuple universe per Definition
// 13: identical attribute sets and identical better-than relations on
// every pair.
func Equivalent(p1, p2 pref.Preference, universe []pref.Tuple) bool {
	return FindInequivalence(p1, p2, universe) == nil
}

// Inequivalence is a witness pair on which two preference terms disagree.
type Inequivalence struct {
	X, Y   pref.Tuple
	P1Less bool
	P2Less bool
	Reason string
}

// Error implements error.
func (w *Inequivalence) Error() string { return "algebra: " + w.Reason }

// FindInequivalence returns a witness that P1 ≢ P2 over the universe, or
// nil if the terms agree everywhere.
func FindInequivalence(p1, p2 pref.Preference, universe []pref.Tuple) *Inequivalence {
	if !pref.AttrsEqual(p1.Attrs(), p2.Attrs()) {
		return &Inequivalence{Reason: fmt.Sprintf("attribute sets differ: %v vs %v", p1.Attrs(), p2.Attrs())}
	}
	for i, x := range universe {
		for j, y := range universe {
			if i == j {
				continue
			}
			l1 := p1.Less(x, y)
			l2 := p2.Less(x, y)
			if l1 != l2 {
				return &Inequivalence{
					X: x, Y: y, P1Less: l1, P2Less: l2,
					Reason: fmt.Sprintf("terms disagree on a pair: %s=%v, %s=%v", p1, l1, p2, l2),
				}
			}
		}
	}
	return nil
}

// StrongerFilter reports whether p1 is a stronger preference filter than p2
// on the universe (Definition 19): size(P1, U) ≤ size(P2, U), measured as
// the number of maximal distinct projections.
func StrongerFilter(p1, p2 pref.Preference, universe []pref.Tuple) bool {
	return maxCount(p1, universe) <= maxCount(p2, universe)
}

// maxCount counts distinct maximal projections of p over the universe.
func maxCount(p pref.Preference, universe []pref.Tuple) int {
	attrs := p.Attrs()
	seen := make(map[string]struct{})
	for _, t := range pref.Max(p, universe) {
		seen[pref.ProjectionKey(t, attrs)] = struct{}{}
	}
	return len(seen)
}

// Law is one verifiable algebraic law: it constructs both sides from the
// supplied operand preferences and names itself for reporting.
type Law struct {
	Name string
	// Arity is the number of operand preferences the law consumes.
	Arity int
	// Build constructs (lhs, rhs) from operands; it may reject operands
	// that violate the law's preconditions by returning an error.
	Build func(ops []pref.Preference) (lhs, rhs pref.Preference, err error)
}

// Check verifies the law for the given operands over the universe. A nil
// error means the law held (or its preconditions were unsatisfiable for
// these operands, reported via ok=false).
func (l Law) Check(ops []pref.Preference, universe []pref.Tuple) (ok bool, err error) {
	if len(ops) != l.Arity {
		return false, fmt.Errorf("algebra: law %s wants %d operands, got %d", l.Name, l.Arity, len(ops))
	}
	lhs, rhs, err := l.Build(ops)
	if err != nil {
		return false, nil // preconditions unsatisfied; vacuous
	}
	if w := FindInequivalence(lhs, rhs, universe); w != nil {
		return true, fmt.Errorf("algebra: law %s failed: %s", l.Name, w.Reason)
	}
	return true, nil
}

// Laws is the verifiable subset of Propositions 2 and 3. Laws whose
// preconditions reference a specific operand shape (duals of linear sums,
// anti-chains) construct the required shape from the supplied operands.
var Laws = []Law{
	{
		Name: "Prop2b: P1⊗P2 ≡ P2⊗P1", Arity: 2,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Pareto(ops[0], ops[1]), pref.Pareto(ops[1], ops[0]), nil
		},
	},
	{
		Name: "Prop2b: (P1⊗P2)⊗P3 ≡ P1⊗(P2⊗P3)", Arity: 3,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Pareto(pref.Pareto(ops[0], ops[1]), ops[2]),
				pref.Pareto(ops[0], pref.Pareto(ops[1], ops[2])), nil
		},
	},
	{
		Name: "Prop2c: (P1&P2)&P3 ≡ P1&(P2&P3)", Arity: 3,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Prioritized(pref.Prioritized(ops[0], ops[1]), ops[2]),
				pref.Prioritized(ops[0], pref.Prioritized(ops[1], ops[2])), nil
		},
	},
	{
		Name: "Prop2d: P1♦P2 ≡ P2♦P1", Arity: 2,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			l, err := pref.Intersection(ops[0], ops[1])
			if err != nil {
				return nil, nil, err
			}
			r, err := pref.Intersection(ops[1], ops[0])
			if err != nil {
				return nil, nil, err
			}
			return l, r, nil
		},
	},
	{
		Name: "Prop2d: (P1♦P2)♦P3 ≡ P1♦(P2♦P3)", Arity: 3,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			l12, err := pref.Intersection(ops[0], ops[1])
			if err != nil {
				return nil, nil, err
			}
			l, err := pref.Intersection(l12, ops[2])
			if err != nil {
				return nil, nil, err
			}
			r23, err := pref.Intersection(ops[1], ops[2])
			if err != nil {
				return nil, nil, err
			}
			r, err := pref.Intersection(ops[0], r23)
			if err != nil {
				return nil, nil, err
			}
			return l, r, nil
		},
	},
	{
		Name: "Prop3b: (P∂)∂ ≡ P", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return rawDual{rawDual{ops[0]}}, ops[0], nil
		},
	},
	{
		Name: "Prop3d: HIGHEST ≡ LOWEST∂", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			attr := ops[0].Attrs()[0]
			return pref.HIGHEST(attr), pref.Dual(pref.LOWEST(attr)), nil
		},
	},
	{
		Name: "Prop3f: P♦P ≡ P", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			l, err := pref.Intersection(ops[0], ops[0])
			if err != nil {
				return nil, nil, err
			}
			return l, ops[0], nil
		},
	},
	{
		Name: "Prop3g: P♦P∂ ≡ A↔", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			l, err := pref.Intersection(ops[0], pref.Dual(ops[0]))
			if err != nil {
				return nil, nil, err
			}
			return l, pref.AntiChain(ops[0].Attrs()...), nil
		},
	},
	{
		Name: "Prop3i: P&P ≡ P", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Prioritized(ops[0], ops[0]), ops[0], nil
		},
	},
	{
		Name: "Prop3i: P&P∂ ≡ P", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Prioritized(ops[0], pref.Dual(ops[0])), ops[0], nil
		},
	},
	{
		Name: "Prop3j: P&A↔ ≡ P", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Prioritized(ops[0], pref.AntiChain(ops[0].Attrs()...)), ops[0], nil
		},
	},
	{
		Name: "Prop3k: A↔&P ≡ A↔  (shared attributes)", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			ac := pref.AntiChain(ops[0].Attrs()...)
			return pref.Prioritized(ac, ops[0]), ac, nil
		},
	},
	{
		Name: "Prop3l: P⊗P ≡ P", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Pareto(ops[0], ops[0]), ops[0], nil
		},
	},
	{
		Name: "Prop3m: A↔⊗P ≡ A↔&P  (shared attributes)", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			ac := pref.AntiChain(ops[0].Attrs()...)
			return pref.Pareto(ac, ops[0]), pref.Prioritized(ac, ops[0]), nil
		},
	},
	{
		Name: "Prop3n: P⊗A↔ ≡ A↔  (shared attributes)", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			ac := pref.AntiChain(ops[0].Attrs()...)
			return pref.Pareto(ops[0], ac), ac, nil
		},
	},
	{
		Name: "Prop3n: P⊗P∂ ≡ A↔  (shared attributes)", Arity: 1,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			return pref.Pareto(ops[0], pref.Dual(ops[0])), pref.AntiChain(ops[0].Attrs()...), nil
		},
	},
	{
		Name: "Prop4a: P1&P2 ≡ P1  (identical attribute sets)", Arity: 2,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			if !pref.AttrsEqual(ops[0].Attrs(), ops[1].Attrs()) {
				return nil, nil, fmt.Errorf("needs identical attribute sets")
			}
			return pref.Prioritized(ops[0], ops[1]), ops[0], nil
		},
	},
	{
		Name: "Prop5: P1⊗P2 ≡ (P1&P2)♦(P2&P1)", Arity: 2,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			rhs, err := pref.Intersection(pref.Prioritized(ops[0], ops[1]), pref.Prioritized(ops[1], ops[0]))
			if err != nil {
				return nil, nil, err
			}
			return pref.Pareto(ops[0], ops[1]), rhs, nil
		},
	},
	{
		Name: "Prop6: P1⊗P2 ≡ P1♦P2  (identical attribute sets)", Arity: 2,
		Build: func(ops []pref.Preference) (pref.Preference, pref.Preference, error) {
			rhs, err := pref.Intersection(ops[0], ops[1])
			if err != nil {
				return nil, nil, err
			}
			return pref.Pareto(ops[0], ops[1]), rhs, nil
		},
	},
}

// rawDual reverses an order without the structural collapse the pref.Dual
// constructor performs, so Prop 3b is tested semantically: rawDual{rawDual
// {P}} evaluates two genuine reversals.
type rawDual struct{ p pref.Preference }

// Attrs implements pref.Preference.
func (d rawDual) Attrs() []string { return d.p.Attrs() }

// Less reverses the inner order.
func (d rawDual) Less(x, y pref.Tuple) bool { return d.p.Less(y, x) }

func (d rawDual) String() string { return d.p.String() + "∂" }
