package algebra

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pref"
)

// TestLawsPropertyBased verifies every law of Propositions 2 and 3 against
// randomly generated operand terms over random finite universes.
func TestLawsPropertyBased(t *testing.T) {
	check := func(seed int64) bool {
		g := NewGen(seed, 4, "a", "b", "c")
		universe := g.Universe(10)
		for _, law := range Laws {
			ops := make([]pref.Preference, law.Arity)
			for i := range ops {
				ops[i] = g.Term(1)
			}
			// Laws with shared-attribute preconditions draw operands on a
			// single attribute.
			if strings.Contains(law.Name, "identical attribute sets") || strings.Contains(law.Name, "shared attributes") {
				for i := range ops {
					ops[i] = g.BasePrefOn("a")
				}
			}
			// Intersection-based laws need matching attribute sets.
			if strings.Contains(law.Name, "♦") && law.Arity >= 2 {
				for i := range ops {
					ops[i] = g.BasePrefOn("a")
				}
			}
			_, err := law.Check(ops, universe)
			if err != nil {
				t.Logf("seed %d: %v (operands %v)", seed, err, ops)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestNonDiscriminationTheoremExplicit pins Proposition 5 on the paper's
// Example 7 preferences plus random operands with disjoint attributes.
func TestNonDiscriminationTheoremExplicit(t *testing.T) {
	g := NewGen(42, 5, "Price", "Mileage")
	universe := g.Universe(20)
	p1 := pref.LOWEST("Price")
	p2 := pref.LOWEST("Mileage")
	lhs := pref.Pareto(p1, p2)
	rhs := pref.MustIntersection(pref.Prioritized(p1, p2), pref.Prioritized(p2, p1))
	if w := FindInequivalence(lhs, rhs, universe); w != nil {
		t.Fatalf("non-discrimination theorem failed: %v", w.Reason)
	}
}

// TestDiscriminationTheoremDisjoint verifies Prop 4b: P1&P2 ≡ P1 +
// (A1↔ & P2) for disjoint attribute sets. The paper embeds P1 into the
// union attribute space; evaluated over tuples that carry both attributes,
// the two sides must agree.
func TestDiscriminationTheoremDisjoint(t *testing.T) {
	check := func(seed int64) bool {
		g := NewGen(seed, 4, "a", "b")
		universe := g.Universe(12)
		p1 := g.BasePrefOn("a")
		p2 := g.BasePrefOn("b")
		lhs := pref.Prioritized(p1, p2)
		// rhs: x < y iff x <P1 y ∨ (x =a y ∧ x <P2 y), assembled from the
		// disjoint union of P1* and A1↔&P2.
		grouped := pref.GroupBy([]string{"a"}, p2)
		for i, x := range universe {
			for j, y := range universe {
				if i == j {
					continue
				}
				want := lhs.Less(x, y)
				got := p1.Less(x, y) || grouped.Less(x, y)
				if want != got {
					t.Logf("seed %d: mismatch for %s & %s", seed, p1, p2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParetoAssociativityGeneralSPOs probes the Prop 2b associativity claim
// on general (non-chain) component preferences — an interesting corner
// because Definition 8's equality-based composition makes nesting order
// visible in principle. The reproduction documents the finding in
// EXPERIMENTS.md.
func TestParetoAssociativityGeneralSPOs(t *testing.T) {
	violations := 0
	var witness string
	for seed := int64(0); seed < 120; seed++ {
		g := NewGen(seed, 3, "a", "b", "c")
		universe := g.Universe(8)
		p1 := g.BasePrefOn("a")
		p2 := g.BasePrefOn("b")
		p3 := g.BasePrefOn("c")
		lhs := pref.Pareto(pref.Pareto(p1, p2), p3)
		rhs := pref.Pareto(p1, pref.Pareto(p2, p3))
		if w := FindInequivalence(lhs, rhs, universe); w != nil {
			violations++
			if witness == "" {
				witness = w.Reason + " with " + p1.String() + ", " + p2.String() + ", " + p3.String()
			}
		}
	}
	// Pareto over single-attribute base preferences with the paper's
	// equality semantics IS associative on disjoint attributes (equality
	// distributes over projections); any violation is a bug.
	if violations > 0 {
		t.Errorf("associativity violated in %d/120 samples; first witness: %s", violations, witness)
	}
}

// TestCommutativityPareto on disjoint attributes, direct check.
func TestCommutativityPareto(t *testing.T) {
	g := NewGen(7, 4, "a", "b")
	universe := g.Universe(12)
	p1 := g.BasePrefOn("a")
	p2 := g.BasePrefOn("b")
	if !Equivalent(pref.Pareto(p1, p2), pref.Pareto(p2, p1), universe) {
		t.Error("⊗ must commute")
	}
}

func TestEquivalenceRequiresSameAttrs(t *testing.T) {
	w := FindInequivalence(pref.LOWEST("a"), pref.LOWEST("b"), nil)
	if w == nil || !strings.Contains(w.Reason, "attribute sets differ") {
		t.Fatal("different attribute sets must be inequivalent outright")
	}
	if w.Error() == "" {
		t.Error("witness must render as error")
	}
}

func TestEquivalentFindsWitness(t *testing.T) {
	g := NewGen(1, 4, "a")
	universe := g.Universe(8)
	w := FindInequivalence(pref.LOWEST("a"), pref.HIGHEST("a"), universe)
	if w == nil {
		t.Fatal("LOWEST and HIGHEST must differ")
	}
	if w.X == nil || w.Y == nil {
		t.Error("witness tuples must be populated")
	}
	if w.P1Less == w.P2Less {
		t.Error("witness must show disagreement")
	}
}

func TestStrongerFilterProp13(t *testing.T) {
	g := NewGen(3, 5, "a", "b")
	universe := g.Universe(30)
	p1 := pref.LOWEST("a")
	p2 := pref.LOWEST("b")
	prio := pref.Prioritized(p1, p2)
	pareto := pref.Pareto(p1, p2)
	if !StrongerFilter(prio, p1, universe) {
		t.Error("P1&P2 ⇛ P1 (Prop 13c)")
	}
	if !StrongerFilter(prio, pareto, universe) {
		t.Error("P1&P2 ⇛ P1⊗P2 (Prop 13d)")
	}
}

func TestLawCheckArityError(t *testing.T) {
	law := Laws[0]
	if _, err := law.Check(nil, nil); err == nil {
		t.Error("wrong arity must error")
	}
}

// TestAggregationLaws verifies the '+' and '⊕' portion of Propositions 2
// and 3 over integer segment universes of several sizes.
func TestAggregationLaws(t *testing.T) {
	for _, size := range []int{6, 9, 12} {
		for _, err := range CheckAggregationLaws("A", size) {
			t.Errorf("domain size %d: %v", size, err)
		}
	}
}

// TestSegmentOrderIsDisjoint validates the '+' operand construction: two
// segment orders over disjoint segments must be disjoint preferences.
func TestSegmentOrderIsDisjoint(t *testing.T) {
	p1, err := segmentOrder("A", []pref.Value{int64(0), int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := segmentOrder("A", []pref.Value{int64(2), int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	var universe []pref.Tuple
	for i := int64(0); i < 4; i++ {
		universe = append(universe, pref.Single{Attr: "A", Value: i})
	}
	if !pref.DisjointOn(p1, p2, universe) {
		t.Fatal("segment orders over disjoint segments must be disjoint preferences")
	}
	if v := pref.CheckSPO(p1, universe); v != nil {
		t.Fatalf("segment order violates SPO: %v", v)
	}
	// In-segment order present, cross-segment absent.
	if !p1.Less(universe[0], universe[1]) {
		t.Error("0 < 1 within the segment")
	}
	if p1.Less(universe[2], universe[3]) {
		t.Error("p1 must not rank outside its segment")
	}
}
