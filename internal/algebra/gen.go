package algebra

import (
	"fmt"
	"math/rand"

	"repro/internal/pref"
)

// Gen produces random preference terms and tuple universes for
// property-based testing. All output is deterministic for a given seed.
type Gen struct {
	rng *rand.Rand
	// Attrs is the attribute vocabulary; each attribute carries a small
	// integer domain 0…DomainSize-1.
	Attrs      []string
	DomainSize int
}

// NewGen creates a generator over the given attribute vocabulary.
func NewGen(seed int64, domainSize int, attrs ...string) *Gen {
	if len(attrs) == 0 {
		attrs = []string{"a", "b", "c"}
	}
	if domainSize < 2 {
		domainSize = 4
	}
	return &Gen{rng: rand.New(rand.NewSource(seed)), Attrs: attrs, DomainSize: domainSize}
}

// Universe returns n random tuples assigning each attribute a value from
// its integer domain.
func (g *Gen) Universe(n int) []pref.Tuple {
	out := make([]pref.Tuple, n)
	for i := range out {
		t := make(pref.MapTuple, len(g.Attrs))
		for _, a := range g.Attrs {
			t[a] = int64(g.rng.Intn(g.DomainSize))
		}
		out[i] = t
	}
	return out
}

// domainValues returns the full integer domain as values.
func (g *Gen) domainValues() []pref.Value {
	out := make([]pref.Value, g.DomainSize)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// subset draws a random subset of the integer domain.
func (g *Gen) subset() []pref.Value {
	var out []pref.Value
	for i := 0; i < g.DomainSize; i++ {
		if g.rng.Intn(2) == 0 {
			out = append(out, int64(i))
		}
	}
	return out
}

// BasePref draws a random base preference on a random attribute.
func (g *Gen) BasePref() pref.Preference {
	return g.BasePrefOn(g.Attrs[g.rng.Intn(len(g.Attrs))])
}

// BasePrefOn draws a random base preference on the given attribute.
func (g *Gen) BasePrefOn(attr string) pref.Preference {
	switch g.rng.Intn(9) {
	case 0:
		return pref.POS(attr, g.subset()...)
	case 1:
		return pref.NEG(attr, g.subset()...)
	case 2:
		pos := g.subset()
		var neg []pref.Value
		posSet := pref.NewValueSet(pos...)
		for _, v := range g.subset() {
			if !posSet.Contains(v) {
				neg = append(neg, v)
			}
		}
		p, err := pref.POSNEG(attr, pos, neg)
		if err != nil {
			return pref.POS(attr, pos...)
		}
		return p
	case 3:
		pos1 := g.subset()
		var pos2 []pref.Value
		set1 := pref.NewValueSet(pos1...)
		for _, v := range g.subset() {
			if !set1.Contains(v) {
				pos2 = append(pos2, v)
			}
		}
		p, err := pref.POSPOS(attr, pos1, pos2)
		if err != nil {
			return pref.POS(attr, pos1...)
		}
		return p
	case 4:
		return g.explicit(attr)
	case 5:
		return pref.AROUND(attr, float64(g.rng.Intn(g.DomainSize)))
	case 6:
		lo := float64(g.rng.Intn(g.DomainSize))
		hi := lo + float64(g.rng.Intn(g.DomainSize))
		return pref.MustBETWEEN(attr, lo, hi)
	case 7:
		return pref.LOWEST(attr)
	}
	return pref.HIGHEST(attr)
}

// explicit draws a random acyclic explicit graph by orienting random edges
// from higher to lower domain values (guaranteeing acyclicity).
func (g *Gen) explicit(attr string) pref.Preference {
	var edges []pref.Edge
	for i := 0; i < g.DomainSize; i++ {
		for j := i + 1; j < g.DomainSize; j++ {
			if g.rng.Intn(4) == 0 {
				edges = append(edges, pref.Edge{Worse: int64(i), Better: int64(j)})
			}
		}
	}
	p, err := pref.EXPLICIT(attr, edges)
	if err != nil {
		// Unreachable: edges are oriented by value, hence acyclic.
		panic(fmt.Sprintf("algebra: generated cyclic EXPLICIT graph: %v", err))
	}
	return p
}

// Term draws a random preference term of at most the given constructor
// depth, combining base preferences with ⊗, &, ∂ and rank(F).
func (g *Gen) Term(depth int) pref.Preference {
	if depth <= 0 {
		return g.BasePref()
	}
	switch g.rng.Intn(6) {
	case 0:
		return pref.Pareto(g.Term(depth-1), g.Term(depth-1))
	case 1:
		return pref.Prioritized(g.Term(depth-1), g.Term(depth-1))
	case 2:
		return pref.Dual(g.Term(depth - 1))
	case 3:
		a1 := g.Attrs[g.rng.Intn(len(g.Attrs))]
		a2 := g.Attrs[g.rng.Intn(len(g.Attrs))]
		return pref.Rank("w-sum", pref.WeightedSum(1, 2),
			pref.AROUND(a1, float64(g.rng.Intn(g.DomainSize))),
			pref.HIGHEST(a2))
	case 4:
		sub := g.Term(depth - 1)
		other := g.sameAttrsTerm(sub)
		p, err := pref.Intersection(sub, other)
		if err != nil {
			return sub
		}
		return p
	}
	return g.BasePref()
}

// sameAttrsTerm draws a term over exactly the attribute set of the given
// term, for aggregation constructors that require matching attributes.
func (g *Gen) sameAttrsTerm(p pref.Preference) pref.Preference {
	attrs := p.Attrs()
	acc := g.BasePrefOn(attrs[0])
	for _, a := range attrs[1:] {
		acc = pref.Pareto(acc, g.BasePrefOn(a))
	}
	return acc
}

// ChainTerm draws a random structural chain (LOWEST/HIGHEST prioritized
// chains), for laws requiring chain operands.
func (g *Gen) ChainTerm(depth int) pref.Preference {
	attr := g.Attrs[g.rng.Intn(len(g.Attrs))]
	var leaf pref.Preference
	if g.rng.Intn(2) == 0 {
		leaf = pref.LOWEST(attr)
	} else {
		leaf = pref.HIGHEST(attr)
	}
	if depth <= 0 {
		return leaf
	}
	return pref.Prioritized(leaf, g.ChainTerm(depth-1))
}

// DomainTuples wraps the full integer domain of one attribute as tuples.
func (g *Gen) DomainTuples(attr string) []pref.Tuple {
	vals := g.domainValues()
	out := make([]pref.Tuple, len(vals))
	for i, v := range vals {
		out[i] = pref.Single{Attr: attr, Value: v}
	}
	return out
}
