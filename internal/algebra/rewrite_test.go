package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/pref"
)

func TestSimplifyRules(t *testing.T) {
	lo := pref.LOWEST("a")
	hi := pref.HIGHEST("a")
	ac := pref.AntiChain("a")
	cases := []struct {
		name string
		in   pref.Preference
		want string
	}{
		{"P&P → P", pref.Prioritized(lo, lo), "LOWEST(a)"},
		{"P⊗P → P", pref.Pareto(lo, lo), "LOWEST(a)"},
		{"P♦P → P", pref.MustIntersection(lo, lo), "LOWEST(a)"},
		{"P&A↔ → P", pref.Prioritized(lo, ac), "LOWEST(a)"},
		{"A↔&P → A↔", pref.Prioritized(ac, lo), ac.String()},
		{"A↔⊗P → A↔", pref.Pareto(ac, lo), ac.String()},
		{"P⊗A↔ → A↔", pref.Pareto(lo, ac), ac.String()},
		{"LOWEST∂ → HIGHEST", pref.Dual(lo), "HIGHEST(a)"},
		{"HIGHEST∂ → LOWEST", pref.Dual(hi), "LOWEST(a)"},
		{"POS∂ → NEG", pref.Dual(pref.POS("a", int64(1))), "NEG(a, {1})"},
		{"NEG∂ → POS", pref.Dual(pref.NEG("a", int64(1))), "POS(a, {1})"},
		{"P1&P2 → P1 (same attrs)", pref.Prioritized(lo, hi), "LOWEST(a)"},
		{"A↔+P → P", pref.MustDisjointUnion(ac, lo), "LOWEST(a)"},
		{"P+A↔ → P", pref.MustDisjointUnion(lo, ac), "LOWEST(a)"},
		{"P♦A↔ → A↔", pref.MustIntersection(lo, ac), ac.String()},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("%s: Simplify(%s) = %s, want %s", c.name, c.in, got, c.want)
		}
	}
}

func TestSimplifyRecursesIntoSubTerms(t *testing.T) {
	lo := pref.LOWEST("a")
	hi := pref.HIGHEST("b")
	// (LOWEST(a)∂ & HIGHEST(b)) should rewrite the dual leaf.
	in := pref.Prioritized(pref.Dual(lo), hi)
	got := Simplify(in).String()
	want := pref.Prioritized(pref.HIGHEST("a"), hi).String()
	if got != want {
		t.Errorf("nested rewrite: got %s, want %s", got, want)
	}
}

func TestSimplifyLeavesGroupingIntact(t *testing.T) {
	// A↔(Make) & P(Price) must NOT collapse — the anti-chain is on a
	// different attribute set (Definition 16 grouping).
	g := pref.GroupBy([]string{"Make"}, pref.LOWEST("Price"))
	if got := Simplify(g).String(); got != g.String() {
		t.Errorf("grouping rewritten: %s", got)
	}
}

// TestSimplifyPreservesSemantics: the rewritten term must be equivalent to
// the original on random universes — the soundness property of the whole
// rewriting layer.
func TestSimplifyPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		g := NewGen(seed, 4, "a", "b", "c")
		universe := g.Universe(10)
		term := g.Term(3)
		simplified := Simplify(term)
		if !pref.AttrsEqual(term.Attrs(), simplified.Attrs()) {
			// Prop 4a rewriting can only fire on identical attribute sets,
			// so attribute sets must be preserved.
			t.Logf("seed %d: attribute sets changed: %v vs %v", seed, term.Attrs(), simplified.Attrs())
			return false
		}
		if w := FindInequivalence(term, simplified, universe); w != nil {
			t.Logf("seed %d: %s simplified to inequivalent %s: %s", seed, term, simplified, w.Reason)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyShrinksOrKeepsTermSize(t *testing.T) {
	check := func(seed int64) bool {
		g := NewGen(seed, 4, "a", "b")
		term := g.Term(3)
		return TermSize(Simplify(term)) <= TermSize(term)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTermSize(t *testing.T) {
	lo := pref.LOWEST("a")
	if TermSize(lo) != 1 {
		t.Error("leaf size 1")
	}
	if TermSize(pref.Pareto(lo, lo)) != 3 {
		t.Error("⊗ adds one node")
	}
	if TermSize(pref.Dual(pref.Pareto(lo, lo))) != 4 {
		t.Error("∂ adds one node")
	}
	r := pref.Rank("F", pref.WeightedSum(1), pref.HIGHEST("a"), pref.LOWEST("b"))
	if TermSize(r) != 3 {
		t.Errorf("rank size = %d", TermSize(r))
	}
	sum := pref.MustLinearSum("s", pref.AntiChainSet("x", "a"), pref.AntiChainSet("y", "b"))
	if TermSize(sum) != 3 {
		t.Errorf("⊕ size = %d", TermSize(sum))
	}
}

func TestGenProducesValidTermsAndChains(t *testing.T) {
	g := NewGen(5, 4, "a", "b")
	universe := g.Universe(10)
	for i := 0; i < 30; i++ {
		term := g.Term(2)
		if v := pref.CheckSPO(term, universe); v != nil {
			t.Fatalf("generated term %s violates SPO: %v", term, v)
		}
	}
	chain := g.ChainTerm(2)
	if v := pref.CheckSPO(chain, universe); v != nil {
		t.Fatalf("generated chain %s violates SPO: %v", chain, v)
	}
	if len(g.DomainTuples("a")) != g.DomainSize {
		t.Error("DomainTuples size")
	}
}
