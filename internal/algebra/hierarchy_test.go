package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/pref"
)

// TestHierarchyAllEdges verifies every §3.4 sub-constructor edge on a
// numeric universe (numeric so AROUND/BETWEEN/LOWEST/HIGHEST edges apply;
// the set-based edges work on any values).
func TestHierarchyAllEdges(t *testing.T) {
	universe := []pref.Value{int64(0), int64(1), int64(2), int64(3), int64(4), int64(5)}
	if errs := CheckHierarchy("A", universe); len(errs) != 0 {
		for _, err := range errs {
			t.Error(err)
		}
	}
}

// TestHierarchyPropertyBased re-checks the edges on random universes.
func TestHierarchyPropertyBased(t *testing.T) {
	check := func(seed int64) bool {
		g := NewGen(seed, 6, "A")
		var universe []pref.Value
		for i := 0; i < g.DomainSize; i++ {
			universe = append(universe, int64(i))
		}
		// Shuffle so firstHalf/secondQuarter pick varying sets.
		for i := len(universe) - 1; i > 0; i-- {
			j := int(seed+int64(i)*7) % (i + 1)
			if j < 0 {
				j = -j
			}
			universe[i], universe[j] = universe[j], universe[i]
		}
		return len(CheckHierarchy("A", universe)) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIntersectionIsSubConstructorOfPareto is Prop 6 as a hierarchy edge:
// ♦ ≼ ⊗ on identical attribute sets.
func TestIntersectionIsSubConstructorOfPareto(t *testing.T) {
	g := NewGen(9, 5, "A")
	universe := g.Universe(12)
	for trial := 0; trial < 20; trial++ {
		p1 := g.BasePrefOn("A")
		p2 := g.BasePrefOn("A")
		pareto := pref.Pareto(p1, p2)
		sect := pref.MustIntersection(p1, p2)
		if w := FindInequivalence(pareto, sect, universe); w != nil {
			t.Fatalf("♦ ≼ ⊗ failed for %s, %s: %v", p1, p2, w.Reason)
		}
	}
}

// TestPrioritizedIsSubConstructorOfRankF realizes the paper's §3.4 remark
// that '&' ≼ rank(F) can be verified with a properly weighted F: for
// bounded scores, F(x1, x2) = M·x1 + x2 with M large enough makes the
// weighted sum lexicographic. This holds when P1's score gaps are bounded
// below (finite domains).
func TestPrioritizedIsSubConstructorOfRankF(t *testing.T) {
	// Scores in {0..5}; gap ≥ 1, so M = 10 dominates any x2 spread.
	s1 := pref.HIGHEST("a")
	s2 := pref.HIGHEST("b")
	prio := pref.Prioritized(s1, s2)
	rankF := pref.Rank("lex", pref.WeightedSum(10, 1), s1, s2)
	g := NewGen(13, 6, "a", "b")
	universe := g.Universe(20)
	for i, x := range universe {
		for j, y := range universe {
			if i == j {
				continue
			}
			// rank(F) is complete where & may leave ties: only check that
			// every &-ranking is preserved (order embedding, the essence of
			// the sub-constructor claim for chains).
			if prio.Less(x, y) && !rankF.Less(x, y) {
				t.Fatalf("rank(F) with lexicographic weights must extend &: (%v, %v)", x, y)
			}
		}
	}
}

func TestHierarchyHelpersEdgeCases(t *testing.T) {
	if got := firstHalf(nil); got != nil {
		t.Error("empty universe halves are empty")
	}
	if got := secondQuarter([]pref.Value{int64(1)}); got != nil {
		t.Error("one-value universe has empty second quarter")
	}
	if _, err := numericPivot([]pref.Value{"x"}); err == nil {
		t.Error("non-numeric universe has no pivot")
	}
	if v, err := numericPivot([]pref.Value{"x", int64(3)}); err != nil || v != 3 {
		t.Error("pivot skips non-numerics")
	}
}
