package algebra

import (
	"fmt"

	"repro/internal/pref"
)

// SubConstructor is one edge C1 ≼ C2 of the §3.4 sub-constructor
// hierarchies: the definition of C1 is obtained from C2 by specializing
// constraints. Each entry builds a C1 instance and the specialized C2
// instance it must be equivalent to; equivalence is then checked on finite
// universes by the tests and prefbench.
type SubConstructor struct {
	Name string
	// Build returns (sub, super) such that sub ≼ super demands sub ≡ super
	// over every finite universe for the chosen parameters.
	Build func(attr string, universe []pref.Value) (sub, super pref.Preference, err error)
}

// Hierarchy is the verifiable edge set of the three §3.4 hierarchies. The
// builders choose concrete parameters from the supplied value universe.
var Hierarchy = []SubConstructor{
	{
		Name: "POS ≼ POS/POS (POS2-set = ∅)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			posSet := firstHalf(universe)
			super, err := pref.POSPOS(attr, posSet, nil)
			if err != nil {
				return nil, nil, err
			}
			return pref.POS(attr, posSet...), super, nil
		},
	},
	{
		Name: "POS ≼ POS/NEG (NEG-set = ∅)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			posSet := firstHalf(universe)
			super, err := pref.POSNEG(attr, posSet, nil)
			if err != nil {
				return nil, nil, err
			}
			return pref.POS(attr, posSet...), super, nil
		},
	},
	{
		Name: "NEG ≼ POS/NEG (POS-set = ∅)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			negSet := firstHalf(universe)
			super, err := pref.POSNEG(attr, nil, negSet)
			if err != nil {
				return nil, nil, err
			}
			return pref.NEG(attr, negSet...), super, nil
		},
	},
	{
		Name: "POS/POS ≼ EXPLICIT (EXPLICIT-graph = POS1↔ ⊕ POS2↔)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			if len(universe) < 2 {
				return nil, nil, fmt.Errorf("universe too small")
			}
			pos1 := firstHalf(universe)
			pos2 := secondQuarter(universe)
			sub, err := pref.POSPOS(attr, pos1, pos2)
			if err != nil {
				return nil, nil, err
			}
			var edges []pref.Edge
			for _, worse := range pos2 {
				for _, better := range pos1 {
					edges = append(edges, pref.Edge{Worse: worse, Better: better})
				}
			}
			super, err := pref.EXPLICIT(attr, edges)
			if err != nil {
				return nil, nil, err
			}
			return sub, super, nil
		},
	},
	{
		Name: "AROUND ≼ BETWEEN (low = up)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			z, err := numericPivot(universe)
			if err != nil {
				return nil, nil, err
			}
			super, err := pref.BETWEEN(attr, z, z)
			if err != nil {
				return nil, nil, err
			}
			return pref.AROUND(attr, z), super, nil
		},
	},
	{
		Name: "BETWEEN ≼ SCORE (f(x) = −distance(x, [low, up]))",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			z, err := numericPivot(universe)
			if err != nil {
				return nil, nil, err
			}
			low, up := z-1, z+1
			between, err := pref.BETWEEN(attr, low, up)
			if err != nil {
				return nil, nil, err
			}
			super := pref.SCORE(attr, "-distance", func(v pref.Value) float64 {
				return -between.Distance(v)
			})
			return between, super, nil
		},
	},
	{
		Name: "HIGHEST ≼ SCORE (f(x) = x)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			super := pref.SCORE(attr, "identity", func(v pref.Value) float64 {
				n, ok := pref.Numeric(v)
				if !ok {
					return 0
				}
				return n
			})
			return pref.HIGHEST(attr), super, nil
		},
	},
	{
		Name: "LOWEST ≼ SCORE (f(x) = −x)",
		Build: func(attr string, universe []pref.Value) (pref.Preference, pref.Preference, error) {
			super := pref.SCORE(attr, "negate", func(v pref.Value) float64 {
				n, ok := pref.Numeric(v)
				if !ok {
					return 0
				}
				return -n
			})
			return pref.LOWEST(attr), super, nil
		},
	},
}

// CheckHierarchy verifies every hierarchy edge over the given single-
// attribute value universe and returns the failures.
func CheckHierarchy(attr string, universe []pref.Value) []error {
	tuples := make([]pref.Tuple, len(universe))
	for i, v := range universe {
		tuples[i] = pref.Single{Attr: attr, Value: v}
	}
	var errs []error
	for _, edge := range Hierarchy {
		sub, super, err := edge.Build(attr, universe)
		if err != nil {
			continue // parameters unsatisfiable for this universe
		}
		if w := FindInequivalence(sub, super, tuples); w != nil {
			errs = append(errs, fmt.Errorf("hierarchy edge %s: %s", edge.Name, w.Reason))
		}
	}
	return errs
}

// firstHalf returns the first half of a value universe (at least one value
// when non-empty).
func firstHalf(universe []pref.Value) []pref.Value {
	if len(universe) == 0 {
		return nil
	}
	n := (len(universe) + 1) / 2
	return universe[:n]
}

// secondQuarter returns values from the third quarter of the universe,
// disjoint from firstHalf.
func secondQuarter(universe []pref.Value) []pref.Value {
	lo := (len(universe) + 1) / 2
	hi := lo + (len(universe)-lo+1)/2
	if lo >= len(universe) {
		return nil
	}
	return universe[lo:hi]
}

// numericPivot picks a numeric pivot value from the universe.
func numericPivot(universe []pref.Value) (float64, error) {
	for _, v := range universe {
		if n, ok := pref.Numeric(v); ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("no numeric value in universe")
}
