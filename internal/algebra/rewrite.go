package algebra

import (
	"repro/internal/pref"
)

// Simplify rewrites a preference term using the algebra's equivalence laws
// until no rule applies, returning an equivalent (usually smaller) term.
// It is the heuristic-transformation layer a preference query optimizer
// would sit on (§7 "push preference … heuristic transformations"). The
// rewrites applied are exactly Propositions 3 and 4a:
//
//	(P∂)∂            → P            (Prop 3b, structural in pref.Dual)
//	P & P            → P            (Prop 3i)
//	P & A↔           → P            (Prop 3j, shared attributes)
//	A↔ & P           → A↔           (Prop 3k, shared attributes)
//	P ⊗ P            → P            (Prop 3l)
//	A↔ ⊗ P, P ⊗ A↔   → A↔           (Prop 3m/3n, shared attributes)
//	P ♦ P            → P            (Prop 3f)
//	P1 & P2          → P1           (Prop 4a, identical attribute sets)
//	LOWEST∂          → HIGHEST      (Prop 3d)
//	HIGHEST∂         → LOWEST       (Prop 3d)
//	POS∂             → NEG          (Prop 3e, same value set)
//	NEG∂             → POS          (Prop 3e, same value set)
//
// Equality of sub-terms is syntactic (identical rendered terms), which is
// sound: syntactically equal terms are trivially equivalent.
func Simplify(p pref.Preference) pref.Preference {
	for {
		next, changed := simplifyOnce(p)
		if !changed {
			return next
		}
		p = next
	}
}

func simplifyOnce(p pref.Preference) (pref.Preference, bool) {
	switch q := p.(type) {
	case *pref.DualPref:
		inner, changed := simplifyOnce(q.Inner())
		if changed {
			return pref.Dual(inner), true
		}
		switch i := q.Inner().(type) {
		case *pref.Lowest:
			return pref.HIGHEST(i.Attr()), true
		case *pref.Highest:
			return pref.LOWEST(i.Attr()), true
		case *pref.Pos:
			return pref.NEG(i.Attr(), i.PosSet().Values()...), true
		case *pref.Neg:
			return pref.POS(i.Attr(), i.NegSet().Values()...), true
		}
		return p, false
	case *pref.PrioritizedPref:
		l, lc := simplifyOnce(q.Left())
		r, rc := simplifyOnce(q.Right())
		if lc || rc {
			return pref.Prioritized(l, r), true
		}
		if isAntiChain(l) && pref.AttrsEqual(l.Attrs(), r.Attrs()) {
			return l, true // Prop 3k
		}
		if isAntiChain(r) && pref.AttrsEqual(l.Attrs(), r.Attrs()) {
			return l, true // Prop 3j
		}
		if sameTerm(l, r) {
			return l, true // Prop 3i
		}
		if pref.AttrsEqual(l.Attrs(), r.Attrs()) {
			return l, true // Prop 4a
		}
		return p, false
	case *pref.ParetoPref:
		l, lc := simplifyOnce(q.Left())
		r, rc := simplifyOnce(q.Right())
		if lc || rc {
			return pref.Pareto(l, r), true
		}
		if sameTerm(l, r) {
			return l, true // Prop 3l
		}
		if pref.AttrsEqual(l.Attrs(), r.Attrs()) {
			if isAntiChain(l) || isAntiChain(r) {
				return pref.AntiChain(l.Attrs()...), true // Prop 3m/3n
			}
		}
		return p, false
	case *pref.IntersectionPref:
		l, lc := simplifyOnce(q.Left())
		r, rc := simplifyOnce(q.Right())
		if lc || rc {
			n, err := pref.Intersection(l, r)
			if err != nil {
				return p, false
			}
			return n, true
		}
		if sameTerm(l, r) {
			return l, true // Prop 3f
		}
		if isAntiChain(l) || isAntiChain(r) {
			return pref.AntiChain(l.Attrs()...), true // x <♦ y needs both
		}
		return p, false
	case *pref.DisjointUnionPref:
		l, lc := simplifyOnce(q.Left())
		r, rc := simplifyOnce(q.Right())
		if lc || rc {
			n, err := pref.DisjointUnion(l, r)
			if err != nil {
				return p, false
			}
			return n, true
		}
		if isAntiChain(l) {
			return r, true // empty order contributes nothing to ∨
		}
		if isAntiChain(r) {
			return l, true
		}
		return p, false
	}
	return p, false
}

// isAntiChain reports a structurally empty order.
func isAntiChain(p pref.Preference) bool {
	_, ok := p.(*pref.AntiChainPref)
	return ok
}

// sameTerm reports syntactic equality of rendered terms.
func sameTerm(a, b pref.Preference) bool { return a.String() == b.String() }

// TermSize counts the constructor nodes of a term, a simple cost proxy for
// rewriting experiments.
func TermSize(p pref.Preference) int {
	switch q := p.(type) {
	case *pref.DualPref:
		return 1 + TermSize(q.Inner())
	case *pref.ParetoPref:
		return 1 + TermSize(q.Left()) + TermSize(q.Right())
	case *pref.PrioritizedPref:
		return 1 + TermSize(q.Left()) + TermSize(q.Right())
	case *pref.IntersectionPref:
		return 1 + TermSize(q.Left()) + TermSize(q.Right())
	case *pref.DisjointUnionPref:
		return 1 + TermSize(q.Left()) + TermSize(q.Right())
	case *pref.LinearSumPref:
		return 1 + TermSize(q.Left()) + TermSize(q.Right())
	case *pref.RankPref:
		n := 1
		for _, s := range q.Parts() {
			n += TermSize(s)
		}
		return n
	}
	return 1
}
