package algebra

import (
	"fmt"

	"repro/internal/pref"
)

// AggregationLaws completes Proposition 2 for the aggregation constructors
// '+' and '⊕', whose operands need disjointness preconditions that the
// generic Laws table cannot synthesize from arbitrary terms. Each law
// builds its operands from the supplied disjoint single-attribute value
// segments.
//
//	Prop 2e: P1 + P2 ≡ P2 + P1,  (P1 + P2) + P3 ≡ P1 + (P2 + P3)
//	Prop 2f: (P1 ⊕ P2) ⊕ P3 ≡ P1 ⊕ (P2 ⊕ P3)
//	Prop 3c: (P1 ⊕ P2)∂ ≡ P2∂ ⊕ P1∂
//
// Disjoint '+' operands are EXPLICIT fragments restricted to separate
// value segments (their "outside values" rule is neutralized by evaluating
// only over the union of segments ordered within one fragment each —
// instead we use segment-local orders built from prioritized anti-chain
// sums, which have genuinely disjoint ranges).
type AggregationLaw struct {
	Name string
	// Check verifies the law over segments of a single-attribute universe;
	// segs are pairwise disjoint value slices.
	Check func(attr string, segs [][]pref.Value, universe []pref.Tuple) error
}

// segmentOrder builds a preference on attr that ranks only within the
// given value segment: the linear order seg[0] < seg[1] < … (better last),
// empty elsewhere. Its range is exactly the segment, so two segmentOrders
// over disjoint segments are disjoint preferences per Definition 4.
func segmentOrder(attr string, seg []pref.Value) (pref.Preference, error) {
	var edges []pref.Edge
	for i := 0; i+1 < len(seg); i++ {
		edges = append(edges, pref.Edge{Worse: seg[i], Better: seg[i+1]})
	}
	ex, err := pref.EXPLICIT(attr, edges)
	if err != nil {
		return nil, err
	}
	return restrictToRange{ex}, nil
}

// restrictToRange strips the EXPLICIT rule "graph values beat all other
// values", leaving only the in-graph order — a preference whose range is
// exactly the graph's value set.
type restrictToRange struct{ ex *pref.Explicit }

// Attrs implements pref.Preference.
func (r restrictToRange) Attrs() []string { return r.ex.Attrs() }

// Less ranks only within the explicit graph.
func (r restrictToRange) Less(x, y pref.Tuple) bool {
	attr := r.ex.Attr()
	xv, xok := x.Get(attr)
	yv, yok := y.Get(attr)
	if !xok || !yok {
		return false
	}
	return r.ex.InGraphLess(xv, yv)
}

func (r restrictToRange) String() string { return "in-range " + r.ex.String() }

// AggregationLawSet is the verifiable law set.
var AggregationLawSet = []AggregationLaw{
	{
		Name: "Prop2e: P1+P2 ≡ P2+P1",
		Check: func(attr string, segs [][]pref.Value, universe []pref.Tuple) error {
			p1, err := segmentOrder(attr, segs[0])
			if err != nil {
				return err
			}
			p2, err := segmentOrder(attr, segs[1])
			if err != nil {
				return err
			}
			l := pref.MustDisjointUnion(p1, p2)
			r := pref.MustDisjointUnion(p2, p1)
			if w := FindInequivalence(l, r, universe); w != nil {
				return fmt.Errorf("%s", w.Reason)
			}
			return nil
		},
	},
	{
		Name: "Prop2e: (P1+P2)+P3 ≡ P1+(P2+P3)",
		Check: func(attr string, segs [][]pref.Value, universe []pref.Tuple) error {
			p1, err := segmentOrder(attr, segs[0])
			if err != nil {
				return err
			}
			p2, err := segmentOrder(attr, segs[1])
			if err != nil {
				return err
			}
			p3, err := segmentOrder(attr, segs[2])
			if err != nil {
				return err
			}
			l := pref.MustDisjointUnion(pref.MustDisjointUnion(p1, p2), p3)
			r := pref.MustDisjointUnion(p1, pref.MustDisjointUnion(p2, p3))
			if w := FindInequivalence(l, r, universe); w != nil {
				return fmt.Errorf("%s", w.Reason)
			}
			return nil
		},
	},
	{
		Name: "Prop2f: (P1⊕P2)⊕P3 ≡ P1⊕(P2⊕P3)",
		Check: func(attr string, segs [][]pref.Value, universe []pref.Tuple) error {
			// Linear sums operate on anti-chain segments; associativity is
			// checked on the combined attribute.
			a1 := pref.AntiChainSet("s1", segs[0]...)
			a2 := pref.AntiChainSet("s2", segs[1]...)
			a3 := pref.AntiChainSet("s3", segs[2]...)
			l12, err := pref.LinearSum("s12", a1, a2)
			if err != nil {
				return err
			}
			lhs, err := pref.LinearSum(attr, l12, a3)
			if err != nil {
				return err
			}
			r23, err := pref.LinearSum("s23", a2, a3)
			if err != nil {
				return err
			}
			rhs, err := pref.LinearSum(attr, a1, r23)
			if err != nil {
				return err
			}
			if w := FindInequivalence(lhs, rhs, universe); w != nil {
				return fmt.Errorf("%s", w.Reason)
			}
			return nil
		},
	},
	{
		Name: "Prop3c: (P1⊕P2)∂ ≡ P2∂⊕P1∂",
		Check: func(attr string, segs [][]pref.Value, universe []pref.Tuple) error {
			// With anti-chain segments, Pi∂ = Pi (Prop 3a), so the law
			// reduces to (P1⊕P2)∂ ≡ P2⊕P1 — still a non-trivial reversal.
			a1 := pref.AntiChainSet("s1", segs[0]...)
			a2 := pref.AntiChainSet("s2", segs[1]...)
			fwd, err := pref.LinearSum(attr, a1, a2)
			if err != nil {
				return err
			}
			rev, err := pref.LinearSum(attr, a2, a1)
			if err != nil {
				return err
			}
			if w := FindInequivalence(pref.Dual(fwd), rev, universe); w != nil {
				return fmt.Errorf("%s", w.Reason)
			}
			return nil
		},
	},
}

// CheckAggregationLaws verifies the '+'/'⊕' law set over a single-attribute
// integer universe split into three segments, returning any failures.
func CheckAggregationLaws(attr string, domainSize int) []error {
	if domainSize < 6 {
		domainSize = 6
	}
	var all []pref.Value
	var universe []pref.Tuple
	for i := 0; i < domainSize; i++ {
		all = append(all, int64(i))
		universe = append(universe, pref.Single{Attr: attr, Value: int64(i)})
	}
	third := domainSize / 3
	segs := [][]pref.Value{all[:third], all[third : 2*third], all[2*third:]}
	var errs []error
	for _, law := range AggregationLawSet {
		if err := law.Check(attr, segs, universe); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", law.Name, err))
		}
	}
	return errs
}
