package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mining"
	"repro/internal/pref"
	"repro/internal/prefrepo"
	"repro/internal/psql"
	"repro/internal/pterm"
	"repro/internal/pxpath"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Integration tests: full pipelines across module boundaries, the flows a
// downstream adopter would build.

// TestCSVToPreferenceSQLPipeline loads a relation from CSV and queries it
// end to end through Preference SQL, including EXPLAIN.
func TestCSVToPreferenceSQLPipeline(t *testing.T) {
	csv := `oid,make,color,price,mileage
1,Opel,red,9800,120000
2,Opel,white,10400,60000
3,BMW,red,24500,30000
4,VW,blue,11200,45000
5,VW,gray,8900,95000
`
	rel, err := relation.ReadCSV("car", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	cat := psql.Catalog{"car": rel}
	res, err := psql.Run(`SELECT oid FROM car
		PREFERRING color <> 'gray' PRIOR TO LOWEST(price)
		ORDER BY oid`, cat, psql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Definition 9: across distinct non-gray colours nothing is ranked, so
	// the cheapest car of EACH surviving colour value remains: oids 1
	// (red, 9800 beats red 24500), 2 (white) and 4 (blue).
	var got []string
	for i := 0; i < res.Len(); i++ {
		v, _ := res.Tuple(i).Get("oid")
		got = append(got, pref.FormatValue(v))
	}
	if strings.Join(got, ",") != "1,2,4" {
		t.Fatalf("oids = %v, want [1 2 4]", got)
	}
	// The single cheapest non-gray car needs a CASCADE.
	res, err = psql.Run(`SELECT oid FROM car
		PREFERRING color <> 'gray' CASCADE LOWEST(price)`, cat, psql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("cascade must single out the cheapest, got %d rows", res.Len())
	}
	if v, _ := res.Tuple(0).Get("oid"); !pref.EqualValues(v, int64(1)) {
		t.Errorf("winner = %v, want oid 1", v)
	}
	plan, err := psql.Run("EXPLAIN SELECT oid FROM car PREFERRING LOWEST(price)", cat, psql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() < 3 {
		t.Error("EXPLAIN must produce a multi-step plan")
	}
}

// TestRepositoryToQueryPipeline stores preferences in the repository,
// reloads them from JSON, composes them, and evaluates under BMO — the
// §7 "persistent preference repository" flow.
func TestRepositoryToQueryPipeline(t *testing.T) {
	repo := prefrepo.New()
	if err := repo.Put("buyer", "", "alice",
		pref.Pareto(pref.LOWEST("price"), pref.NEG("color", "gray"))); err != nil {
		t.Fatal(err)
	}
	if err := repo.PutTerm("seller", "", "bob", "HIGHEST(commission)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := prefrepo.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	deal, err := reloaded.Compose("pareto", "buyer", "seller")
	if err != nil {
		t.Fatal(err)
	}
	cars := workload.Cars(500, 17)
	table := core.BMOWith(deal, cars, core.BNL)
	if table.Len() == 0 || table.Len() == cars.Len() {
		t.Fatalf("negotiation table = %d of %d rows", table.Len(), cars.Len())
	}
	// The frontier is fully unranked — pure compromise territory.
	for i := 0; i < table.Len() && i < 10; i++ {
		for j := i + 1; j < table.Len() && j < 10; j++ {
			if !pref.Indifferent(deal, table.Tuple(i), table.Tuple(j)) {
				t.Fatal("BMO results must be mutually unranked")
			}
		}
	}
}

// TestMiningToQueryPipeline mines a preference from a synthetic choice log
// and uses it to answer a BMO query — the §7 "preference mining" flow.
func TestMiningToQueryPipeline(t *testing.T) {
	cars := workload.Cars(2000, 23)
	// Simulate a user who accepts cheap red cars and rejects the rest.
	log := &mining.Log{}
	for i := 0; i < cars.Len(); i++ {
		tup := cars.Tuple(i)
		color, _ := tup.Get("color")
		price, _ := tup.Get("price")
		pn, _ := pref.Numeric(price)
		log.Observe(tup, color == "red" && pn < 15000)
	}
	mined, err := mining.Fit(log, []string{"color", "price"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The mined preference must serialize (repository-ready) …
	text, err := pterm.Marshal(mined)
	if err != nil {
		t.Fatalf("mined preference must serialize: %v", err)
	}
	if !strings.Contains(text, "POS(color, {'red'})") {
		t.Errorf("mined term = %s", text)
	}
	// … and its BMO answer must look like the accepted set.
	best := core.BMO(mined, cars)
	if best.Len() == 0 {
		t.Fatal("empty BMO result")
	}
	for i := 0; i < best.Len(); i++ {
		if c, _ := best.Tuple(i).Get("color"); c != "red" {
			t.Errorf("mined preference admitted %v", c)
		}
	}
}

// TestSQLAndXPathAgree runs the same soft constraint through Preference
// SQL over a relation and Preference XPath over the equivalent XML
// document; the BMO answers must coincide.
func TestSQLAndXPathAgree(t *testing.T) {
	rel := relation.New("car", relation.MustSchema(
		relation.Column{Name: "oid", Type: relation.Int},
		relation.Column{Name: "price", Type: relation.Int},
		relation.Column{Name: "mileage", Type: relation.Int},
	)).MustInsert(
		relation.Row{int64(1), int64(9800), int64(120000)},
		relation.Row{int64(2), int64(10400), int64(60000)},
		relation.Row{int64(3), int64(24500), int64(30000)},
		relation.Row{int64(4), int64(11200), int64(45000)},
	)
	sqlRes, err := psql.Run("SELECT oid FROM car PREFERRING LOWEST(price) AND LOWEST(mileage) ORDER BY oid", psql.Catalog{"car": rel}, psql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	xml := `<CARS>
	  <CAR oid="1" price="9800" mileage="120000"/>
	  <CAR oid="2" price="10400" mileage="60000"/>
	  <CAR oid="3" price="24500" mileage="30000"/>
	  <CAR oid="4" price="11200" mileage="45000"/>
	</CARS>`
	root, err := pxpath.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := pxpath.Query(root, `/CARS/CAR #[(@price)lowest and (@mileage)lowest]#`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != sqlRes.Len() {
		t.Fatalf("SQL found %d best matches, XPath %d", sqlRes.Len(), len(nodes))
	}
	sqlOids := map[string]bool{}
	for i := 0; i < sqlRes.Len(); i++ {
		v, _ := sqlRes.Tuple(i).Get("oid")
		sqlOids[pref.FormatValue(v)] = true
	}
	for _, n := range nodes {
		oid, _ := n.Attr("oid")
		if !sqlOids[oid] {
			t.Errorf("XPath result oid=%s missing from SQL result", oid)
		}
	}
}

// TestAllEnginesOnRealisticWorkload pins cross-algorithm agreement on the
// car market at realistic scale, including the parallel evaluator.
func TestAllEnginesOnRealisticWorkload(t *testing.T) {
	cars := workload.Cars(3000, 31)
	wish := pref.Prioritized(
		pref.NEG("color", "gray"),
		pref.ParetoAll(pref.LOWEST("price"), pref.LOWEST("mileage"), pref.HIGHEST("year")),
	)
	want := engine.BMOIndices(wish, cars, engine.Naive)
	for _, alg := range []engine.Algorithm{engine.BNL, engine.SFS, engine.DNC, engine.Decomposition, engine.ParallelBNL, engine.Auto} {
		got := engine.BMOIndices(wish, cars, alg)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, naive found %d", alg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: row mismatch at %d", alg, i)
			}
		}
	}
}

// TestTermSyntaxThroughSQLResults closes the loop term → SQL → term: a
// preference built from a stored term answers the same query as its
// Preference SQL equivalent.
func TestTermSyntaxThroughSQLResults(t *testing.T) {
	cars := workload.Cars(1000, 41)
	stored := pterm.MustParse("NEG(color, {'gray'}) & (LOWEST(price) >< LOWEST(mileage))")
	direct := core.BMOWith(stored, cars, core.BNL)
	viaSQL, err := psql.Run(
		"SELECT * FROM car PREFERRING color <> 'gray' PRIOR TO (LOWEST(price) AND LOWEST(mileage))",
		psql.Catalog{"car": cars}, psql.Options{Algorithm: engine.BNL})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() != viaSQL.Len() {
		t.Fatalf("stored term: %d rows, SQL: %d rows", direct.Len(), viaSQL.Len())
	}
}
